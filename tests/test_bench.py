"""Tests for the benchmark trajectory (:mod:`repro.bench`)."""

import json
from pathlib import Path

import pytest

from repro import bench
from repro.cli import main as cli_main


@pytest.fixture(scope="module")
def smoke_payload():
    return bench.run_benchmarks("smoke")


class TestRunBenchmarks:
    def test_smoke_profile_produces_valid_payload(self, smoke_payload):
        assert bench.validate_payload(smoke_payload) == []
        assert smoke_payload["schema"] == bench.SCHEMA
        assert smoke_payload["profile"] == "smoke"
        names = [entry["name"] for entry in smoke_payload["benchmarks"]]
        assert "monte_carlo_scalar" in names
        assert "monte_carlo_fast" in names
        assert "planner_reference" in names
        assert "runner_parallel" in names

    def test_unknown_profile_raises(self):
        with pytest.raises(ValueError):
            bench.run_benchmarks("huge")

    def test_derived_speedups_positive(self, smoke_payload):
        for value in smoke_payload["derived"].values():
            assert value > 0

    def test_batched_planner_rows_per_backend(self, smoke_payload):
        from repro.core import available_backends

        names = [entry["name"] for entry in smoke_payload["benchmarks"]]
        for backend in available_backends():
            assert f"planner_batch_{backend}" in names
        assert "planner_batch_speedup" in smoke_payload["derived"]

    def test_service_rows_record_throughput_and_hit_rate(self, smoke_payload):
        rows = {
            entry["name"]: entry
            for entry in smoke_payload["benchmarks"]
            if entry["name"].startswith("service_")
        }
        assert set(rows) == {"service_cold_cache", "service_warm_cache"}
        for row in rows.values():
            assert row["params"]["hit_rate"] >= 0.0
            assert row["params"]["throughput_rps"] > 0.0
        # warmed caches answer the whole replayed stream
        assert rows["service_warm_cache"]["params"]["hit_rate"] == pytest.approx(1.0)
        assert "service_throughput" in smoke_payload["derived"]
        assert smoke_payload["derived"]["service_throughput"] > 0.0

    def test_contention_rows_record_blocking(self, smoke_payload):
        rows = {
            entry["name"]: entry
            for entry in smoke_payload["benchmarks"]
            if entry["name"].startswith("contention_")
        }
        assert set(rows) == {"contention_engine", "contention_legacy_path"}
        engine = rows["contention_engine"]["params"]
        assert engine["offered_calls"] > 0
        assert 0.0 <= engine["blocking_probability"] <= 1.0
        assert rows["contention_legacy_path"]["params"]["capacity"] is None
        assert "contention_setups_per_s" in smoke_payload["derived"]
        assert smoke_payload["derived"]["contention_setups_per_s"] > 0.0


class TestTrajectoryFiles:
    def test_index_increments(self, tmp_path, smoke_payload):
        assert bench.next_bench_index(tmp_path) == 0
        first = bench.write_trajectory(smoke_payload, root=tmp_path)
        assert first.name == "BENCH_0.json"
        assert bench.next_bench_index(tmp_path) == 1
        second = bench.write_trajectory(smoke_payload, root=tmp_path)
        assert second.name == "BENCH_1.json"
        payload = json.loads(second.read_text())
        assert payload["index"] == 1
        assert bench.validate_payload(payload) == []

    def test_explicit_out_path(self, tmp_path, smoke_payload):
        target = tmp_path / "custom.json"
        written = bench.write_trajectory(smoke_payload, path=target)
        assert written == target
        assert bench.validate_payload(json.loads(target.read_text())) == []


class TestValidatePayload:
    def test_rejects_non_object(self):
        assert bench.validate_payload([1, 2]) != []

    def test_rejects_wrong_schema(self, smoke_payload):
        broken = dict(smoke_payload)
        broken["schema"] = "other/9"
        assert any("schema" in problem for problem in bench.validate_payload(broken))

    def test_rejects_inconsistent_stats(self, smoke_payload):
        broken = json.loads(json.dumps(smoke_payload))
        broken["benchmarks"][0]["min_s"] = -1.0
        assert any("min_s" in problem for problem in bench.validate_payload(broken))

    def test_rejects_empty_benchmarks(self, smoke_payload):
        broken = dict(smoke_payload)
        broken["benchmarks"] = []
        assert bench.validate_payload(broken) != []


class TestCli:
    def test_bench_roundtrip(self, tmp_path, capsys):
        out = tmp_path / "BENCH_0.json"
        assert cli_main(["bench", "--profile", "smoke", "--out", str(out)]) == 0
        stdout = capsys.readouterr().out
        assert "trajectory written" in stdout
        assert cli_main(["bench", "--validate", str(out)]) == 0
        assert "valid" in capsys.readouterr().out

    def test_validate_rejects_garbage(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": "nope"}))
        assert cli_main(["bench", "--validate", str(bad)]) == 1
        capsys.readouterr()

    def test_validate_missing_file(self, tmp_path, capsys):
        assert cli_main(["bench", "--validate", str(tmp_path / "none.json")]) == 2
        capsys.readouterr()


def _snapshot(index, mins, derived=None):
    """A minimal trajectory payload for diff tests."""
    return {
        "schema": bench.SCHEMA,
        "index": index,
        "benchmarks": [
            {"name": name, "min_s": value} for name, value in mins.items()
        ],
        "derived": derived or {},
    }


class TestDiffPayloads:
    def test_flags_slowdowns_beyond_threshold(self):
        diff = bench.diff_payloads(
            _snapshot(0, {"fast": 0.010, "slow": 0.010}),
            _snapshot(1, {"fast": 0.011, "slow": 0.013}),
        )
        assert diff["schema"] == "repro-bench-diff/1"
        assert diff["regressions"] == ["slow"]
        by_name = {row["name"]: row for row in diff["benchmarks"]}
        assert by_name["fast"]["regression"] is False
        assert by_name["slow"]["ratio"] == pytest.approx(1.3)

    def test_derived_speedups_regress_when_shrinking(self):
        diff = bench.diff_payloads(
            _snapshot(0, {}, {"speedup": 4.0}),
            _snapshot(1, {}, {"speedup": 3.0}),
        )
        assert diff["regressions"] == ["speedup"]
        diff = bench.diff_payloads(
            _snapshot(0, {}, {"speedup": 4.0}),
            _snapshot(1, {}, {"speedup": 3.5}),
        )
        assert diff["regressions"] == []

    def test_one_sided_metrics_are_listed_but_never_regressions(self):
        diff = bench.diff_payloads(
            _snapshot(0, {"old_only": 0.010}),
            _snapshot(1, {"new_only": 9.999}),
        )
        assert diff["regressions"] == []
        notes = {row["name"]: row.get("note") for row in diff["benchmarks"]}
        assert notes == {
            "old_only": "only in one snapshot",
            "new_only": "only in one snapshot",
        }

    def test_custom_threshold(self):
        prev, curr = _snapshot(0, {"b": 0.010}), _snapshot(1, {"b": 0.0115})
        assert bench.diff_payloads(prev, curr)["regressions"] == []
        loose = bench.diff_payloads(prev, curr, threshold=0.10)
        assert loose["regressions"] == ["b"]

    def test_committed_trajectory_drift_is_flagged(self):
        """BENCH_0 -> BENCH_1 carries the planner_reference slowdown."""
        root = Path(__file__).resolve().parents[1]
        previous = json.loads((root / "BENCH_0.json").read_text())
        current = json.loads((root / "BENCH_1.json").read_text())
        diff = bench.diff_payloads(previous, current)
        assert "planner_reference" in diff["regressions"]

    def test_render_diff_mentions_regressions(self):
        diff = bench.diff_payloads(
            _snapshot(0, {"b": 0.010}), _snapshot(1, {"b": 0.015})
        )
        text = bench.render_diff(diff)
        assert "REGRESSION" in text
        assert "1 regression(s): b" in text


class TestLatestBenchPath:
    def test_picks_highest_index(self, tmp_path):
        for index in (0, 2, 10):
            (tmp_path / f"BENCH_{index}.json").write_text("{}")
        assert bench.latest_bench_path(tmp_path).name == "BENCH_10.json"

    def test_empty_root(self, tmp_path):
        assert bench.latest_bench_path(tmp_path) is None


class TestDiffCli:
    def _write(self, tmp_path, name, payload):
        path = tmp_path / name
        path.write_text(json.dumps(payload))
        return path

    def test_diff_exit_codes(self, tmp_path, capsys):
        prev = self._write(tmp_path, "BENCH_0.json", _snapshot(0, {"b": 0.010}))
        same = self._write(tmp_path, "BENCH_1.json", _snapshot(1, {"b": 0.010}))
        slow = self._write(tmp_path, "BENCH_2.json", _snapshot(2, {"b": 0.020}))
        assert cli_main(
            ["bench", "--diff", str(prev), "--against", str(same)]
        ) == 0
        assert cli_main(
            ["bench", "--diff", str(prev), "--against", str(slow)]
        ) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_diff_defaults_to_latest_snapshot(self, tmp_path, capsys):
        prev = self._write(tmp_path, "BENCH_0.json", _snapshot(0, {"b": 0.010}))
        self._write(tmp_path, "BENCH_3.json", _snapshot(3, {"b": 0.030}))
        assert cli_main(
            ["bench", "--diff", str(prev), "--root", str(tmp_path)]
        ) == 1
        assert "BENCH_0 -> BENCH_3" in capsys.readouterr().out

    def test_diff_unreadable_input(self, tmp_path, capsys):
        missing = tmp_path / "none.json"
        current = self._write(tmp_path, "BENCH_0.json", _snapshot(0, {}))
        assert cli_main(
            ["bench", "--diff", str(missing), "--against", str(current)]
        ) == 2
        capsys.readouterr()

    def test_fail_rows_gates_only_matching_regressions(self, tmp_path, capsys):
        prev = self._write(
            tmp_path, "BENCH_0.json",
            _snapshot(0, {"planner_fast": 0.010, "runner_parallel": 0.100}),
        )
        slow_runner = self._write(
            tmp_path, "BENCH_1.json",
            _snapshot(1, {"planner_fast": 0.010, "runner_parallel": 0.200}),
        )
        slow_planner = self._write(
            tmp_path, "BENCH_2.json",
            _snapshot(2, {"planner_fast": 0.020, "runner_parallel": 0.100}),
        )
        # runner regression exists but does not match the gate regex.
        assert cli_main(
            ["bench", "--diff", str(prev), "--against", str(slow_runner),
             "--fail-rows", "^planner"]
        ) == 0
        capsys.readouterr()
        # planner regression matches and is fatal.
        assert cli_main(
            ["bench", "--diff", str(prev), "--against", str(slow_planner),
             "--fail-rows", "^planner"]
        ) == 1
        capsys.readouterr()

    def test_script_wrapper_agrees(self, tmp_path):
        import subprocess
        import sys

        root = Path(__file__).resolve().parents[1]
        prev = self._write(tmp_path, "BENCH_0.json", _snapshot(0, {"b": 0.010}))
        slow = self._write(tmp_path, "BENCH_1.json", _snapshot(1, {"b": 0.020}))
        proc = subprocess.run(
            [sys.executable, str(root / "scripts" / "bench_diff.py"),
             str(prev), str(slow)],
            capture_output=True, text=True,
        )
        assert proc.returncode == 1
        assert "REGRESSION" in proc.stdout

    def test_script_wrapper_fail_rows(self, tmp_path):
        import subprocess
        import sys

        root = Path(__file__).resolve().parents[1]
        prev = self._write(tmp_path, "BENCH_0.json", _snapshot(0, {"b": 0.010}))
        slow = self._write(tmp_path, "BENCH_1.json", _snapshot(1, {"b": 0.020}))
        script = str(root / "scripts" / "bench_diff.py")
        gated = subprocess.run(
            [sys.executable, script, str(prev), str(slow),
             "--fail-rows", "^planner"],
            capture_output=True, text=True,
        )
        assert gated.returncode == 0  # regression on "b" does not match
        fatal = subprocess.run(
            [sys.executable, script, str(prev), str(slow), "--fail-rows", "^b"],
            capture_output=True, text=True,
        )
        assert fatal.returncode == 1
        assert "fatal regression" in fatal.stderr
