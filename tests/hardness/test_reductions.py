"""Unit tests for the Conference Call reduction gadgets (Lemmas 3.2 and 3.5)."""

from fractions import Fraction

import pytest

from repro.core import expected_paging, optimal_strategy
from repro.errors import InvalidInstanceError
from repro.hardness import (
    has_quasipartition1,
    lemma35_lower_bound,
    lift_two_device_instance,
    multipartition_parameters,
    reduce_multipartition_to_conference_call,
    reduce_quasipartition1_to_conference_call,
    solve_multipartition,
    solve_quasipartition1,
    unlift_strategy,
)
from tests.conftest import random_exact_instance


def fractions(values):
    return [Fraction(v) for v in values]


class TestLemma32Gadget:
    def test_gadget_probabilities_are_valid(self):
        reduction = reduce_quasipartition1_to_conference_call(fractions((1, 1, 2)))
        instance = reduction.instance
        assert instance.num_devices == 2
        assert instance.max_rounds == 2
        assert sum(instance.row(0)) == 1
        assert sum(instance.row(1)) == 1
        assert all(p > 0 for row in instance.rows for p in row)

    def test_yes_instance_hits_bound(self):
        sizes = fractions((1, 1, 2))
        assert has_quasipartition1(sizes)
        reduction = reduce_quasipartition1_to_conference_call(sizes)
        optimum = optimal_strategy(reduction.instance)
        assert optimum.expected_paging == reduction.lower_bound

    def test_no_instance_stays_above_bound(self):
        sizes = fractions((1, 1, 3))
        assert not has_quasipartition1(sizes)
        reduction = reduce_quasipartition1_to_conference_call(sizes)
        optimum = optimal_strategy(reduction.instance)
        assert optimum.expected_paging > reduction.lower_bound

    def test_witness_recovery(self):
        sizes = fractions((3, 1, 2, 2, 1, 3))
        reduction = reduce_quasipartition1_to_conference_call(sizes)
        optimum = optimal_strategy(reduction.instance)
        witness = reduction.witness_from_strategy(optimum.strategy)
        assert len(witness) == 4
        assert sum(sizes[i] for i in witness) == sum(sizes) / 2

    def test_equivalence_batch(self, rng):
        for _ in range(12):
            sizes = fractions(int(v) for v in rng.integers(1, 9, size=3))
            reduction = reduce_quasipartition1_to_conference_call(sizes)
            optimum = optimal_strategy(reduction.instance)
            assert (optimum.expected_paging == reduction.lower_bound) == (
                solve_quasipartition1(sizes) is not None
            )

    def test_rejects_bad_inputs(self):
        with pytest.raises(InvalidInstanceError, match="divisible"):
            reduce_quasipartition1_to_conference_call(fractions((1, 2)))
        with pytest.raises(InvalidInstanceError, match="strictly below"):
            reduce_quasipartition1_to_conference_call(fractions((0, 0, 5)))


class TestLemma35Gadget:
    def test_gadget_probabilities_are_valid(self):
        reduction = reduce_multipartition_to_conference_call(
            fractions((1, 1, 1, 5)), 3, 2
        )
        instance = reduction.instance
        assert instance.num_devices == 3
        for row in instance.rows:
            assert sum(row) == 1
            assert all(p > 0 for p in row)

    def test_lower_bound_formula(self):
        # m = 2, d = 2, c = 3: b = (0, 2, 3), sum = (3-2) * 4 = 4.
        expected = Fraction(3) - Fraction(5**2, 4 * 2 * 27) * 4
        assert lemma35_lower_bound(2, 2, 3) == expected

    def test_equivalence_m2(self, rng):
        parameters = multipartition_parameters(2, 2)
        for _ in range(10):
            sizes = fractions(int(v) for v in rng.integers(1, 9, size=3))
            reduction = reduce_multipartition_to_conference_call(sizes, 2, 2)
            optimum = optimal_strategy(reduction.instance)
            hits = optimum.expected_paging == reduction.lower_bound
            assert hits == (solve_multipartition(sizes, parameters) is not None)

    def test_equivalence_m3(self, rng):
        parameters = multipartition_parameters(3, 2)
        for _ in range(6):
            sizes = fractions(int(v) for v in rng.integers(1, 7, size=4))
            reduction = reduce_multipartition_to_conference_call(sizes, 3, 2)
            optimum = optimal_strategy(reduction.instance)
            hits = optimum.expected_paging == reduction.lower_bound
            assert hits == (solve_multipartition(sizes, parameters) is not None)

    def test_optimal_strategy_encodes_witness(self):
        sizes = fractions((1, 1, 4))
        reduction = reduce_multipartition_to_conference_call(sizes, 2, 2)
        optimum = optimal_strategy(reduction.instance)
        assert optimum.expected_paging == reduction.lower_bound
        first = sorted(optimum.strategy.group(0))
        # The first group must hold 2 cells carrying 1/3 of the mass: {0, 1}.
        assert first == [0, 1]

    def test_rejects_small_parameters(self):
        with pytest.raises(InvalidInstanceError):
            reduce_multipartition_to_conference_call(fractions((1, 1, 4)), 1, 2)
        with pytest.raises(InvalidInstanceError, match="multiple"):
            reduce_multipartition_to_conference_call(fractions((1, 1)), 2, 2)


class TestLifting:
    def test_lifted_shape(self, rng):
        base = random_exact_instance(rng, num_devices=2, num_cells=4, max_rounds=2)
        lifted = lift_two_device_instance(base, 4)
        assert lifted.num_devices == 4
        assert lifted.num_cells == 5
        assert lifted.max_rounds == 3
        for row in lifted.rows:
            assert sum(row) == 1

    def test_lifted_optimum_isolates_extra_cell(self, rng):
        base = random_exact_instance(rng, num_devices=2, num_cells=4, max_rounds=2)
        lifted = lift_two_device_instance(base, 3)
        optimum = optimal_strategy(lifted)
        assert optimum.strategy.group(0) == frozenset({4})

    def test_unlift_strategy(self, rng):
        base = random_exact_instance(rng, num_devices=2, num_cells=4, max_rounds=2)
        lifted = lift_two_device_instance(base, 3)
        optimum = optimal_strategy(lifted)
        induced = unlift_strategy(optimum.strategy, 4)
        assert induced.num_cells == 4
        value = expected_paging(base, induced)
        best = optimal_strategy(base).expected_paging
        assert value >= best
        assert float(value) <= float(best) * 1.05  # near-optimal continuation

    def test_unlift_rejects_wrong_first_group(self):
        from repro.core import Strategy

        with pytest.raises(InvalidInstanceError, match="extra cell"):
            unlift_strategy(Strategy([[0, 4], [1, 2, 3]]), 4)

    def test_rejects_bad_parameters(self, rng):
        base = random_exact_instance(rng, num_devices=2, num_cells=4, max_rounds=2)
        with pytest.raises(InvalidInstanceError):
            lift_two_device_instance(base, 1)
        with pytest.raises(InvalidInstanceError):
            lift_two_device_instance(base, 3, attraction=Fraction(2))
        three = random_exact_instance(rng, num_devices=3, num_cells=4, max_rounds=2)
        with pytest.raises(InvalidInstanceError, match="two-device"):
            lift_two_device_instance(three, 4)
