"""Unit tests for the QAP connection (Section 5.1)."""

import itertools
from fractions import Fraction

import pytest

from repro.core import expected_paging, optimal_strategy
from repro.errors import InvalidInstanceError, SolverLimitError
from repro.hardness import (
    expected_paging_from_qap,
    formulate_qap,
    qap_objective,
    solve_qap_bruteforce,
    strategy_from_permutation,
)
from tests.conftest import random_exact_instance, random_instance


class TestFormulation:
    def test_rejects_non_two_device(self, rng):
        instance = random_instance(rng, num_devices=3, num_cells=4)
        with pytest.raises(InvalidInstanceError, match="m = 2"):
            formulate_qap(instance)

    def test_matrices_are_symmetric(self, rng):
        instance = random_instance(rng, num_devices=2, num_cells=5)
        formulation = formulate_qap(instance)
        c = formulation.num_cells
        for i in range(c):
            for j in range(c):
                assert formulation.flow[i][j] == formulation.flow[j][i]
                assert formulation.distance[i][j] == formulation.distance[j][i]

    def test_distance_matrix_values(self, rng):
        instance = random_instance(rng, num_devices=2, num_cells=4)
        formulation = formulate_qap(instance)
        # B[r][s] = c - max(r+1, s+1) for 0-based rounds.
        assert formulation.distance[0][0] == 3
        assert formulation.distance[3][0] == 0
        assert formulation.distance[1][2] == 1


class TestObjective:
    def test_objective_equals_c_minus_ep(self, rng):
        """For ANY permutation: QAP objective = c - EP of that permutation."""
        instance = random_exact_instance(rng, num_devices=2, num_cells=5, max_rounds=5)
        formulation = formulate_qap(instance)
        for permutation in itertools.islice(itertools.permutations(range(5)), 20):
            objective = qap_objective(formulation, permutation)
            strategy = strategy_from_permutation(permutation)
            ep = expected_paging(instance, strategy)
            assert expected_paging_from_qap(formulation, objective) == ep

    def test_exact_arithmetic(self, rng):
        instance = random_exact_instance(rng, num_devices=2, num_cells=4, max_rounds=4)
        formulation = formulate_qap(instance)
        value = qap_objective(formulation, (0, 1, 2, 3))
        assert isinstance(value, Fraction)


class TestBruteForce:
    def test_matches_exact_solver(self, rng):
        for _ in range(4):
            instance = random_instance(rng, num_devices=2, num_cells=5, max_rounds=5)
            formulation = formulate_qap(instance)
            _pi, objective = solve_qap_bruteforce(formulation)
            qap_ep = float(expected_paging_from_qap(formulation, objective))
            exact_ep = float(optimal_strategy(instance).expected_paging)
            assert qap_ep == pytest.approx(exact_ep)

    def test_size_limit(self, rng):
        instance = random_instance(rng, num_devices=2, num_cells=10, max_rounds=10)
        formulation = formulate_qap(instance)
        with pytest.raises(SolverLimitError):
            solve_qap_bruteforce(formulation)


class TestGeneralDelay:
    """The §5.1 claim: for constant d the reduction stays polynomial."""

    def test_matches_exact_solver_d2(self, rng):
        from repro.hardness import solve_via_qap

        for _ in range(4):
            instance = random_instance(rng, num_devices=2, num_cells=5, max_rounds=2)
            strategy, value = solve_via_qap(instance)
            exact = optimal_strategy(instance)
            assert float(value) == pytest.approx(float(exact.expected_paging))
            assert strategy.length == 2

    def test_matches_exact_solver_d3(self, rng):
        from repro.hardness import solve_via_qap

        instance = random_instance(rng, num_devices=2, num_cells=5, max_rounds=3)
        _strategy, value = solve_via_qap(instance)
        exact = optimal_strategy(instance)
        assert float(value) == pytest.approx(float(exact.expected_paging))

    def test_strategy_value_consistent(self, rng):
        from repro.hardness import solve_via_qap

        instance = random_instance(rng, num_devices=2, num_cells=5, max_rounds=2)
        strategy, value = solve_via_qap(instance)
        assert float(expected_paging(instance, strategy)) == pytest.approx(
            float(value)
        )

    def test_formulation_validates_sizes(self, rng):
        from repro.hardness import formulate_qap_for_sizes

        instance = random_instance(rng, num_devices=2, num_cells=4, max_rounds=2)
        with pytest.raises(InvalidInstanceError):
            formulate_qap_for_sizes(instance, (2, 1))
        with pytest.raises(InvalidInstanceError):
            formulate_qap_for_sizes(instance, (4, 0))

    def test_d_equals_c_reduces_to_original_formulation(self, rng):
        from repro.hardness import formulate_qap_for_sizes

        instance = random_instance(rng, num_devices=2, num_cells=4, max_rounds=4)
        general = formulate_qap_for_sizes(instance, (1, 1, 1, 1))
        original = formulate_qap(instance)
        assert general.distance == original.distance
        for k in range(4):
            for l in range(4):
                assert float(general.flow[k][l]) == pytest.approx(
                    float(original.flow[k][l])
                )


class TestStrategyFromPermutation:
    def test_builds_sequential_strategy(self):
        strategy = strategy_from_permutation((2, 0, 1))
        assert strategy.group_sizes() == (1, 1, 1)
        assert strategy.group(0) == frozenset({1})  # cell 1 -> round 0
        assert strategy.group(2) == frozenset({0})  # cell 0 -> round 2

    def test_rejects_repeated_round(self):
        with pytest.raises(InvalidInstanceError, match="repeated"):
            strategy_from_permutation((0, 0, 1))
