"""Unit tests for the Partition problem seed."""

import itertools

import pytest

from repro.errors import InvalidInstanceError
from repro.hardness import (
    PartitionInstance,
    has_partition,
    random_instance,
    random_yes_instance,
    solve_partition,
    verify_partition,
)


def brute_force_partition(instance):
    g = instance.count
    for subset in itertools.combinations(range(g), g // 2):
        if 2 * sum(instance.sizes[i] for i in subset) == instance.total:
            return subset
    return None


class TestValidation:
    def test_rejects_odd_count(self):
        with pytest.raises(InvalidInstanceError, match="even"):
            PartitionInstance((1, 2, 3))

    def test_rejects_empty(self):
        with pytest.raises(InvalidInstanceError):
            PartitionInstance(())

    def test_rejects_non_positive(self):
        with pytest.raises(InvalidInstanceError, match="positive"):
            PartitionInstance((1, 0))


class TestSolver:
    def test_yes_instance(self):
        instance = PartitionInstance((3, 1, 2, 2))
        witness = solve_partition(instance)
        assert witness is not None
        assert verify_partition(instance, witness)

    def test_no_instance_odd_total(self):
        assert solve_partition(PartitionInstance((1, 2, 2, 2))) is None

    def test_no_instance_even_total(self):
        # Total 8, but no 2-subset sums to 4: sizes (1, 1, 1, 5).
        assert solve_partition(PartitionInstance((1, 1, 1, 5))) is None

    def test_matches_brute_force(self, rng):
        for _ in range(20):
            instance = random_instance(6, rng, magnitude=12)
            dp = solve_partition(instance)
            brute = brute_force_partition(instance)
            assert (dp is None) == (brute is None)
            if dp is not None:
                assert verify_partition(instance, dp)

    def test_two_sizes(self):
        assert has_partition(PartitionInstance((4, 4)))
        assert not has_partition(PartitionInstance((4, 5)))


class TestVerify:
    def test_rejects_wrong_cardinality(self):
        instance = PartitionInstance((3, 1, 2, 2))
        assert not verify_partition(instance, (0,))

    def test_rejects_wrong_sum(self):
        instance = PartitionInstance((3, 1, 2, 2))
        assert verify_partition(instance, (0, 1))  # 3 + 1 = 4 = total/2
        assert not verify_partition(instance, (1, 2))  # 1 + 2 = 3

    def test_rejects_duplicates_and_range(self):
        instance = PartitionInstance((3, 1, 2, 2))
        assert not verify_partition(instance, (0, 0))
        assert not verify_partition(instance, (0, 9))


class TestGenerators:
    def test_yes_generator_always_solvable(self, rng):
        for count in (4, 6, 8):
            for _ in range(10):
                instance = random_yes_instance(count, rng)
                assert has_partition(instance), instance.sizes

    def test_yes_generator_rejects_odd(self, rng):
        with pytest.raises(InvalidInstanceError):
            random_yes_instance(5, rng)

    def test_random_generator_shape(self, rng):
        instance = random_instance(8, rng)
        assert instance.count == 8
        assert all(size >= 1 for size in instance.sizes)
