"""Unit tests for Multipartition and the Lemma 3.6 reduction."""

from fractions import Fraction

import pytest

from repro.errors import InvalidInstanceError
from repro.hardness import (
    MultipartitionParameters,
    derive_quasipartition2,
    multipartition_parameters,
    multipartition_witness_from_quasipartition,
    quasipartition_witness_from_multipartition,
    reduce_quasipartition2_to_multipartition,
    solve_multipartition,
    solve_quasipartition2,
    verify_multipartition,
)


class TestParameters:
    def test_m2_d2(self):
        parameters = multipartition_parameters(2, 2)
        assert parameters.cardinality_fractions == (Fraction(2, 3), Fraction(1, 3))
        assert parameters.mass_fractions == (Fraction(1, 3), Fraction(2, 3))
        assert parameters.scale == 3

    def test_m2_d3(self):
        parameters = multipartition_parameters(2, 3)
        assert parameters.cardinality_fractions == (
            Fraction(12, 23),
            Fraction(6, 23),
            Fraction(5, 23),
        )
        assert parameters.mass_fractions[0] == Fraction(6, 23)
        assert parameters.mass_fractions[1] == Fraction(3, 23)
        assert sum(parameters.mass_fractions) == 1
        assert parameters.scale == 23

    def test_m3_d2(self):
        parameters = multipartition_parameters(3, 2)
        assert parameters.cardinality_fractions == (Fraction(3, 4), Fraction(1, 4))
        assert parameters.mass_fractions == (Fraction(3, 8), Fraction(5, 8))

    def test_group_sizes(self):
        parameters = multipartition_parameters(2, 2)
        assert parameters.group_sizes(6) == (4, 2)
        with pytest.raises(InvalidInstanceError, match="multiple"):
            parameters.group_sizes(7)

    def test_validation(self):
        with pytest.raises(InvalidInstanceError):
            MultipartitionParameters(
                (Fraction(1, 2), Fraction(1, 4)), (Fraction(1, 2), Fraction(1, 2))
            )


class TestDeriveQuasipartition2:
    def test_m2_d2_uv(self):
        parameters = multipartition_parameters(2, 2)
        template, (u, v) = derive_quasipartition2(parameters)
        # Sorted by mass: group 1 (2/3) then group 0 (1/3); the two smallest
        # are groups 0 and 1; u has the smaller cardinality fraction.
        assert (u, v) == (1, 0)
        assert template.r_u == Fraction(1, 3)
        assert template.r_v == Fraction(2, 3)
        assert template.mass_fraction == Fraction(1, 3)

    def test_m2_d3_uv(self):
        parameters = multipartition_parameters(2, 3)
        template, (u, v) = derive_quasipartition2(parameters)
        assert (u, v) == (1, 0)
        assert template.scale == 23


class TestSolver:
    def test_yes_instance(self):
        parameters = multipartition_parameters(2, 2)
        sizes = [Fraction(1), Fraction(1), Fraction(4)]
        witness = solve_multipartition(sizes, parameters)
        assert witness is not None
        assert verify_multipartition(sizes, parameters, witness)

    def test_no_instance(self):
        parameters = multipartition_parameters(2, 2)
        sizes = [Fraction(1), Fraction(2), Fraction(4)]
        assert solve_multipartition(sizes, parameters) is None

    def test_three_groups(self):
        parameters = MultipartitionParameters(
            (Fraction(1, 2), Fraction(1, 4), Fraction(1, 4)),
            (Fraction(1, 2), Fraction(1, 4), Fraction(1, 4)),
        )
        sizes = [Fraction(1)] * 4
        witness = solve_multipartition(sizes, parameters)
        assert witness is not None
        assert verify_multipartition(sizes, parameters, witness)

    def test_verify_rejects_bad_witness(self):
        parameters = multipartition_parameters(2, 2)
        sizes = [Fraction(1), Fraction(1), Fraction(4)]
        assert not verify_multipartition(sizes, parameters, ((0,), (1, 2)))
        assert not verify_multipartition(sizes, parameters, ((0, 1), (1,)))
        assert not verify_multipartition(sizes, parameters, ((0, 1),))


class TestLemma36:
    def _roundtrip(self, quasi_sizes, parameters):
        reduction = reduce_quasipartition2_to_multipartition(quasi_sizes, parameters)
        template, _uv = derive_quasipartition2(parameters)
        quasi_witness = solve_quasipartition2(quasi_sizes, template)
        multi_witness = solve_multipartition(
            reduction.sizes, parameters, node_limit=5_000_000
        )
        assert (quasi_witness is None) == (multi_witness is None)
        if quasi_witness is not None:
            constructed = multipartition_witness_from_quasipartition(
                reduction, quasi_witness
            )
            assert verify_multipartition(reduction.sizes, parameters, constructed)
            back = quasipartition_witness_from_multipartition(reduction, multi_witness)
            total = sum(quasi_sizes)
            assert sum(quasi_sizes[i] for i in back) == template.mass_fraction * total

    def test_roundtrip_d2_yes(self):
        parameters = multipartition_parameters(2, 2)
        self._roundtrip([Fraction(v) for v in (1, 2, 1, 2, 3, 3)], parameters)

    def test_roundtrip_d2_no(self):
        parameters = multipartition_parameters(2, 2)
        self._roundtrip([Fraction(v) for v in (1, 2, 4, 8, 16, 32)], parameters)

    def test_roundtrip_three_groups(self):
        """A d=3 parameter set with a small scale (not paper-derived)."""
        parameters = MultipartitionParameters(
            (Fraction(1, 4), Fraction(1, 4), Fraction(1, 2)),
            (Fraction(2, 5), Fraction(7, 20), Fraction(1, 4)),
        )
        template, (u, v) = derive_quasipartition2(parameters)
        # u, v are the two smallest-mass groups: here groups 1 and 2... the
        # derived template dictates the quasi-instance length M(r_u+r_v)h.
        per_h = template.total_size(1)
        quasi_sizes = [Fraction(v) for v in range(1, per_h + 1)]
        reduction = reduce_quasipartition2_to_multipartition(quasi_sizes, parameters)
        assert len(reduction.sizes) == parameters.scale
        assert len(reduction.pinned_groups) == 1

    def test_rejects_bad_length(self):
        parameters = multipartition_parameters(2, 2)
        with pytest.raises(InvalidInstanceError, match="multiple"):
            reduce_quasipartition2_to_multipartition(
                [Fraction(1), Fraction(2)], parameters
            )
