"""Unit tests for Quasipartition problems and the Lemma 3.7 reduction."""

import itertools
from fractions import Fraction

import pytest

from repro.errors import InvalidInstanceError
from repro.hardness import (
    QUASIPARTITION1,
    PartitionInstance,
    QuasipartitionParameters,
    extract_partition_witness,
    has_partition,
    has_quasipartition1,
    random_instance,
    reduce_partition_to_quasipartition2,
    solve_quasipartition1,
    solve_quasipartition2,
    subset_with_count_and_sum,
    verify_partition,
)


def brute_force_subset(sizes, count, target):
    for subset in itertools.combinations(range(len(sizes)), count):
        if sum(sizes[i] for i in subset) == target:
            return subset
    return None


class TestSubsetDP:
    def test_matches_brute_force(self, rng):
        for _ in range(15):
            sizes = [Fraction(int(v)) for v in rng.integers(0, 9, size=7)]
            count = int(rng.integers(0, 8))
            target = Fraction(int(rng.integers(0, 30)))
            dp = subset_with_count_and_sum(sizes, count, target)
            brute = brute_force_subset(sizes, count, target)
            assert (dp is None) == (brute is None)
            if dp is not None:
                assert len(dp) == count
                assert sum(sizes[i] for i in dp) == target

    def test_rational_sizes(self):
        sizes = [Fraction(1, 3), Fraction(1, 6), Fraction(1, 2)]
        witness = subset_with_count_and_sum(sizes, 2, Fraction(1, 2))
        assert witness == (0, 1)

    def test_non_representable_target(self):
        sizes = [Fraction(1, 3), Fraction(1, 3)]
        assert subset_with_count_and_sum(sizes, 1, Fraction(1, 7)) is None

    def test_rejects_negative_sizes(self):
        with pytest.raises(InvalidInstanceError):
            subset_with_count_and_sum([Fraction(-1)], 1, Fraction(-1))

    def test_impossible_count(self):
        assert subset_with_count_and_sum([Fraction(1)], 5, Fraction(1)) is None


class TestQuasipartition1:
    def test_yes_instance(self):
        witness = solve_quasipartition1([Fraction(v) for v in (1, 1, 2)])
        assert witness == (0, 1)

    def test_no_instance(self):
        assert not has_quasipartition1([Fraction(v) for v in (1, 1, 3)])

    def test_zero_sizes_allowed(self):
        assert has_quasipartition1([Fraction(0), Fraction(0), Fraction(0)])

    def test_rejects_bad_length(self):
        with pytest.raises(InvalidInstanceError, match="divisible by 3"):
            solve_quasipartition1([Fraction(1), Fraction(1)])

    def test_larger_instance(self):
        sizes = [Fraction(v) for v in (3, 1, 2, 2, 1, 3)]
        witness = solve_quasipartition1(sizes)
        assert witness is not None
        assert len(witness) == 4
        assert sum(sizes[i] for i in witness) == 6


class TestParameters:
    def test_quasipartition1_parameters(self):
        assert QUASIPARTITION1.scale == 3
        assert QUASIPARTITION1.mass_fraction == Fraction(1, 2)
        assert QUASIPARTITION1.subset_size(2) == 4
        assert QUASIPARTITION1.total_size(2) == 6

    def test_rejects_non_integer_scaled(self):
        with pytest.raises(InvalidInstanceError, match="integer"):
            QuasipartitionParameters(
                scale=2,
                r_u=Fraction(1, 3),
                r_v=Fraction(2, 3),
                x_u=Fraction(1, 2),
                x_v=Fraction(1, 2),
            )

    def test_rejects_ru_above_rv(self):
        with pytest.raises(InvalidInstanceError, match="r_u <= r_v"):
            QuasipartitionParameters(
                scale=3,
                r_u=Fraction(2, 3),
                r_v=Fraction(1, 3),
                x_u=Fraction(1, 2),
                x_v=Fraction(1, 2),
            )


class TestLemma37:
    def test_construction_shape(self):
        instance = PartitionInstance((3, 1, 2, 2))
        reduction = reduce_partition_to_quasipartition2(instance)
        assert len(reduction.sizes) == reduction.parameters.total_size(reduction.h)
        assert sum(reduction.sizes) == 1

    def test_specials_dominate(self):
        instance = PartitionInstance((3, 1, 2, 2))
        reduction = reduce_partition_to_quasipartition2(instance)
        big = reduction.sizes[reduction.special_big_index]
        small = reduction.sizes[reduction.special_small_index]
        start, stop = reduction.partition_slice
        real_total = sum(reduction.sizes[start:stop])
        assert big >= small
        assert small > real_total / 2

    def test_roundtrip_yes(self, rng):
        for _ in range(8):
            instance = PartitionInstance(
                tuple(int(v) for v in rng.integers(1, 9, size=4))
            )
            reduction = reduce_partition_to_quasipartition2(instance)
            witness = solve_quasipartition2(reduction.sizes, reduction.parameters)
            assert has_partition(instance) == (witness is not None)
            if witness is not None:
                recovered = extract_partition_witness(reduction, witness)
                assert verify_partition(instance, recovered)

    def test_roundtrip_with_unequal_mass_parameters(self, rng):
        """The x_u != x_v branch of Lemma 3.7 (mutatis mutandis case)."""
        parameters = QuasipartitionParameters(
            scale=3,
            r_u=Fraction(1, 3),
            r_v=Fraction(2, 3),
            x_u=Fraction(2, 3),
            x_v=Fraction(1, 3),
        )
        for _ in range(6):
            instance = random_instance(4, rng, magnitude=9)
            reduction = reduce_partition_to_quasipartition2(instance, parameters)
            witness = solve_quasipartition2(reduction.sizes, reduction.parameters)
            assert has_partition(instance) == (witness is not None)

    def test_roundtrip_xv_larger(self, rng):
        parameters = QuasipartitionParameters(
            scale=4,
            r_u=Fraction(1, 4),
            r_v=Fraction(3, 4),
            x_u=Fraction(1, 4),
            x_v=Fraction(3, 4),
        )
        for _ in range(6):
            instance = random_instance(4, rng, magnitude=9)
            reduction = reduce_partition_to_quasipartition2(instance, parameters)
            witness = solve_quasipartition2(reduction.sizes, reduction.parameters)
            assert has_partition(instance) == (witness is not None)
