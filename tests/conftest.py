"""Shared fixtures and helpers for the test suite."""

from fractions import Fraction

import numpy as np
import pytest

from repro.core import PagingInstance


@pytest.fixture
def rng():
    """A fresh deterministic generator per test."""
    return np.random.default_rng(20020721)  # PODC'02 date


@pytest.fixture
def small_instance(rng):
    """A generic 2-device, 6-cell, 3-round float instance."""
    matrix = rng.dirichlet(np.ones(6), size=2)
    return PagingInstance.from_array(matrix, max_rounds=3)


@pytest.fixture
def exact_instance():
    """A tiny exact (Fraction) instance for equality assertions."""
    rows = [
        [Fraction(1, 2), Fraction(1, 4), Fraction(1, 8), Fraction(1, 8)],
        [Fraction(1, 8), Fraction(1, 8), Fraction(1, 4), Fraction(1, 2)],
    ]
    return PagingInstance(rows, max_rounds=2)


def random_instance(rng, num_devices=2, num_cells=6, max_rounds=3):
    """A quick Dirichlet instance (module-level helper, not a fixture)."""
    matrix = rng.dirichlet(np.ones(num_cells), size=num_devices)
    return PagingInstance.from_array(matrix, max_rounds=max_rounds)


def random_exact_instance(rng, num_devices=2, num_cells=5, max_rounds=2, grain=60):
    """A random instance with exact Fraction rows summing to 1."""
    rows = []
    for _ in range(num_devices):
        weights = [int(w) for w in rng.integers(1, grain, size=num_cells)]
        total = sum(weights)
        rows.append([Fraction(w, total) for w in weights])
    return PagingInstance(rows, max_rounds=max_rounds)
