"""Cross-module integration tests: the full pipelines a user would run."""

import numpy as np
import pytest

from repro.cellnet import (
    CellTopology,
    GravityMobility,
    LocationAreaPlan,
    generate_trace,
    stationary_distribution,
)
from repro.core import (
    PagingInstance,
    adaptive_expected_paging,
    conference_call_heuristic,
    expected_paging_float,
    expected_paging_monte_carlo,
    optimal_strategy,
)
from repro.distributions import (
    empirical_distribution,
    instance_from_traces,
    total_variation,
)


class TestMobilityToPagingPipeline:
    """Traces -> estimated distributions -> paging plan -> savings."""

    def test_full_pipeline(self, rng):
        topology = CellTopology.hexagonal_disk(2)
        attraction = rng.uniform(0.5, 4.0, size=topology.num_cells)
        models = [GravityMobility(topology, attraction) for _ in range(3)]
        traces = [
            generate_trace(model, int(rng.integers(topology.num_cells)), 600, rng)
            for model in models
        ]
        instance = instance_from_traces(
            traces, topology.num_cells, max_rounds=3
        )
        plan = conference_call_heuristic(instance)
        assert float(plan.expected_paging) < topology.num_cells
        saving = 1 - float(plan.expected_paging) / topology.num_cells
        assert saving > 0.1, "skewed profiles should yield a real saving"

    def test_estimated_profile_tracks_stationary(self, rng):
        topology = CellTopology.hexagonal_disk(2)
        attraction = rng.uniform(0.5, 4.0, size=topology.num_cells)
        model = GravityMobility(topology, attraction)
        trace = generate_trace(model, 0, 4_000, rng)
        estimated = empirical_distribution(trace, topology.num_cells)
        truth = stationary_distribution(
            model, topology, samples=8_000, rng=np.random.default_rng(1)
        )
        assert total_variation(estimated, truth) < 0.15

    def test_plan_quality_degrades_gracefully_with_short_traces(self, rng):
        """Even crude estimates beat blanket paging on skewed mobility."""
        topology = CellTopology.hexagonal_disk(2)
        attraction = rng.uniform(0.2, 5.0, size=topology.num_cells)
        model = GravityMobility(topology, attraction)
        truth = stationary_distribution(
            model, topology, samples=8_000, rng=np.random.default_rng(2)
        )
        truth_instance = PagingInstance.from_array(
            np.vstack([truth, truth]), max_rounds=3, allow_zero=True
        )
        trace = generate_trace(model, 0, 150, rng)
        estimate = empirical_distribution(trace, topology.num_cells)
        planned = conference_call_heuristic(
            PagingInstance.from_array(np.vstack([estimate, estimate]), max_rounds=3)
        )
        # Evaluate the plan from the estimate under the TRUE distribution.
        achieved = expected_paging_float(truth_instance, planned.strategy)
        assert achieved < topology.num_cells


class TestPlannerConsistency:
    """The planners agree with each other and with simulation."""

    def test_three_ways_to_the_same_number(self, rng):
        matrix = rng.dirichlet(np.ones(7), size=2)
        instance = PagingInstance.from_array(matrix, max_rounds=3)
        plan = conference_call_heuristic(instance)
        closed = expected_paging_float(instance, plan.strategy)
        simulated = expected_paging_monte_carlo(
            instance, plan.strategy, trials=30_000, rng=rng
        )
        assert simulated == pytest.approx(closed, abs=0.08)
        assert float(plan.expected_paging) == pytest.approx(closed)

    def test_solution_quality_ladder(self, rng):
        """optimal <= adaptive <= heuristic <= blanket, for this seed."""
        matrix = rng.dirichlet(np.ones(7), size=2)
        instance = PagingInstance.from_array(matrix, max_rounds=3)
        optimum = float(optimal_strategy(instance).expected_paging)
        adaptive = float(adaptive_expected_paging(instance))
        heuristic = float(conference_call_heuristic(instance).expected_paging)
        assert optimum <= heuristic + 1e-9
        assert adaptive <= heuristic + 1e-9
        assert heuristic <= instance.num_cells

    def test_la_restricted_instance_round_trip(self, rng):
        """Restricting to a location area and planning inside it works."""
        topology = CellTopology.hexagonal_disk(2)
        plan = LocationAreaPlan.by_bfs(topology, 3)
        matrix = rng.dirichlet(np.ones(topology.num_cells), size=2)
        instance = PagingInstance.from_array(matrix, max_rounds=3)
        area_cells = plan.cells_of(0)
        sub, mapping = instance.restrict([0, 1], area_cells, max_rounds=3)
        local_plan = conference_call_heuristic(sub)
        assert mapping == area_cells
        assert float(local_plan.expected_paging) <= len(area_cells)
