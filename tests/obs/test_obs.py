"""Unit tests for ``repro.obs``: sinks, tracer, instrumentation, reports."""

import json
import threading

import pytest

from repro.obs import (
    SCHEMA,
    JsonlSink,
    MemorySink,
    NullSink,
    Tracer,
    count,
    current_tracer,
    load_events,
    observe,
    render,
    set_tracer,
    span,
    summarize,
    to_json,
    traced,
    tracing,
    use_tracer,
)


def traced_events(sink):
    """Split a MemorySink's events by kind, dropping the meta header."""
    kinds = {}
    for event in sink.events:
        kinds.setdefault(event["event"], []).append(event)
    return kinds


class TestSinks:
    def test_null_sink_is_disabled(self):
        assert NullSink.enabled is False
        assert Tracer(NullSink()).enabled is False

    def test_memory_sink_buffers(self):
        sink = MemorySink()
        sink.write({"event": "counter", "name": "x", "value": 1})
        assert sink.events[-1]["name"] == "x"

    def test_jsonl_sink_roundtrip(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = JsonlSink(path)
        sink.write({"event": "counter", "name": "x", "value": 3})
        sink.close()
        assert load_events(path) == [{"event": "counter", "name": "x", "value": 3}]

    def test_jsonl_sink_created_eagerly_and_closed(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = JsonlSink(path)
        assert path.exists()  # empty trace file even before any event
        sink.close()
        with pytest.raises(ValueError, match="closed"):
            sink.write({"event": "counter", "name": "x", "value": 1})


class TestTracer:
    def test_meta_header_written_first(self):
        sink = MemorySink()
        Tracer(sink)
        assert sink.events[0]["event"] == "meta"
        assert sink.events[0]["schema"] == SCHEMA

    def test_span_emits_elapsed_and_attrs(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        with tracer.span("phase.one", cells=12):
            pass
        event = sink.events[-1]
        assert event["event"] == "span"
        assert event["name"] == "phase.one"
        assert event["elapsed_s"] >= 0.0
        assert event["attrs"] == {"cells": 12}

    def test_counters_and_histograms_aggregate_until_flush(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        tracer.count("calls")
        tracer.count("calls", 2)
        tracer.observe("rounds", 1)
        tracer.observe("rounds", 1)
        tracer.observe("rounds", 3)
        assert traced_events(sink) == {"meta": sink.events[:1]}  # nothing yet
        tracer.flush()
        kinds = traced_events(sink)
        assert kinds["counter"] == [{"event": "counter", "name": "calls", "value": 3}]
        assert kinds["histogram"][0]["counts"] == {"1": 2, "3": 1}

    def test_disabled_tracer_is_inert(self):
        tracer = Tracer()  # defaults to NullSink
        with tracer.span("x"):
            tracer.count("c")
            tracer.observe("h", 1)
        tracer.flush()
        tracer.close()  # must not raise

    def test_absorb_merges_commutatively(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        worker_events = [
            {"event": "meta", "schema": SCHEMA, "created": "x"},
            {"event": "span", "name": "w", "elapsed_s": 0.5, "attrs": {}},
            {"event": "counter", "name": "calls", "value": 2},
            {"event": "histogram", "name": "rounds", "counts": {"2": 5}},
        ]
        tracer.count("calls", 1)
        tracer.observe("rounds", 2)
        for event in worker_events:
            tracer.absorb(event)
        tracer.flush()
        summary = summarize(sink.events)
        assert summary.counters["calls"] == 3
        assert summary.histograms["rounds"] == {2: 6}
        assert summary.spans["w"].count == 1
        # worker meta headers are dropped, not duplicated
        assert sum(1 for e in sink.events if e["event"] == "meta") == 1


class TestActiveTracer:
    def test_default_is_disabled(self):
        assert current_tracer().enabled is False

    def test_use_tracer_restores_previous(self):
        outer = Tracer(MemorySink())
        inner = Tracer(MemorySink())
        with use_tracer(outer, close=False):
            assert current_tracer() is outer
            with use_tracer(inner, close=False):
                assert current_tracer() is inner
            assert current_tracer() is outer
        assert current_tracer().enabled is False

    def test_set_tracer_none_resets(self):
        tracer = Tracer(MemorySink())
        set_tracer(tracer)
        assert current_tracer() is tracer
        set_tracer(None)
        assert current_tracer().enabled is False

    def test_thread_local_isolation(self):
        tracer = Tracer(MemorySink())
        seen = []

        def probe():
            seen.append(current_tracer().enabled)

        with use_tracer(tracer, close=False):
            worker = threading.Thread(target=probe)
            worker.start()
            worker.join()
        assert seen == [False]  # other threads never see this tracer


class TestInstrumentHelpers:
    def test_module_level_span_count_observe(self):
        sink = MemorySink()
        with tracing(sink):
            with span("demo.phase", size=2):
                count("demo.calls")
                observe("demo.rounds", 2)
        summary = summarize(sink.events)
        assert summary.spans["demo.phase"].count == 1
        assert summary.counters == {"demo.calls": 1}
        assert summary.histograms == {"demo.rounds": {2: 1}}

    def test_helpers_are_noops_without_tracer(self):
        with span("demo.phase"):
            count("demo.calls")
            observe("demo.rounds", 1)  # must not raise or leak state

    def test_traced_decorator(self):
        calls = []

        @traced("demo.fn")
        def function(value):
            calls.append(value)
            return value * 2

        assert function(3) == 6  # no tracer: plain call
        sink = MemorySink()
        with tracing(sink):
            assert function(4) == 8
        assert calls == [3, 4]
        assert summarize(sink.events).spans["demo.fn"].count == 1

    def test_tracing_accepts_path(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with tracing(path):
            count("demo.calls", 5)
        summary = summarize(load_events(path))
        assert summary.counters == {"demo.calls": 5}

    def test_tracing_default_memory_sink(self):
        with tracing(close=False) as tracer:
            count("demo.calls")
            tracer.flush()
        assert summarize(tracer.sink.events).counters == {"demo.calls": 1}


class TestReport:
    def _summary(self):
        sink = MemorySink()
        with tracing(sink):
            with span("a.slow"):
                pass
            with span("a.slow"):
                pass
            count("calls", 7)
            observe("rounds", 1, 3)
            observe("rounds", 2)
        return summarize(sink.events)

    def test_summarize_aggregates(self):
        summary = self._summary()
        assert summary.schema == SCHEMA
        assert summary.spans["a.slow"].count == 2
        assert summary.spans["a.slow"].total_s >= summary.spans["a.slow"].max_s
        assert summary.counters == {"calls": 7}
        assert summary.histograms == {"rounds": {1: 3, 2: 1}}
        assert summary.problems == []

    def test_render_sections(self):
        text = render(self._summary())
        assert text.startswith("trace summary")
        assert "a.slow" in text
        assert "calls" in text
        assert "histogram rounds:" in text
        assert "mean 1.250 over 4 observations" in text

    def test_to_json_roundtrips_through_json(self):
        payload = json.loads(json.dumps(to_json(self._summary())))
        assert payload["spans"]["a.slow"]["count"] == 2
        assert payload["histograms"]["rounds"] == {"1": 3, "2": 1}

    def test_summarize_flags_problems(self):
        summary = summarize(
            [
                {"event": "meta", "schema": "other/9", "created": "x"},
                {"event": "mystery"},
                {"event": "histogram", "name": "h"},
            ]
        )
        assert len(summary.problems) == 3

    def test_load_events_rejects_bad_lines(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"event": "meta"}\nnot json\n')
        with pytest.raises(ValueError, match="bad.jsonl:2"):
            load_events(path)


class TestInstrumentedHotPaths:
    """The library's built-in spans/counters actually fire."""

    def _instance(self):
        import numpy as np

        from repro import PagingInstance

        rng = np.random.default_rng(0)
        return PagingInstance.from_array(
            rng.dirichlet(np.ones(6), size=2), max_rounds=2
        )

    def test_planner_spans(self):
        from repro import conference_call_heuristic, optimal_strategy

        sink = MemorySink()
        instance = self._instance()
        with tracing(sink):
            conference_call_heuristic(instance)
            optimal_strategy(instance)
        summary = summarize(sink.events)
        for name in ("core.heuristic", "core.dp", "core.exact"):
            assert summary.spans[name].count == 1, name

    def test_batch_kernel_histograms(self):
        import numpy as np

        from repro import conference_call_heuristic
        from repro.core import expected_paging_monte_carlo_fast

        instance = self._instance()
        strategy = conference_call_heuristic(instance).strategy
        sink = MemorySink()
        with tracing(sink):
            expected_paging_monte_carlo_fast(
                instance,
                strategy,
                trials=500,
                rng=np.random.default_rng(1),
            )
        summary = summarize(sink.events)
        assert summary.spans["batch.monte_carlo"].count == 1
        assert summary.counters["batch.trials"] == 500
        assert sum(summary.histograms["batch.rounds_to_find"].values()) == 500
