"""Unit tests for the movement-sensitivity analysis (E21)."""

import numpy as np
import pytest

from repro.analysis import (
    measure_movement_sensitivity,
    simulate_search_with_movement,
)
from repro.core import conference_call_heuristic, expected_paging_float
from tests.conftest import random_instance


class TestSimulation:
    def test_zero_mobility_matches_stationary_model(self, rng):
        instance = random_instance(rng, num_devices=2, num_cells=8, max_rounds=3)
        plan = conference_call_heuristic(instance)
        result = measure_movement_sensitivity(
            instance, plan.strategy, 0.0, trials=8_000, rng=rng
        )
        assert result.miss_rate == 0.0
        assert result.mean_cells_paged == pytest.approx(
            expected_paging_float(instance, plan.strategy), abs=0.15
        )
        assert result.cost_inflation == pytest.approx(1.0, abs=0.05)

    def test_high_mobility_causes_misses(self, rng):
        instance = random_instance(rng, num_devices=2, num_cells=8, max_rounds=5)
        plan = conference_call_heuristic(instance)
        result = measure_movement_sensitivity(
            instance, plan.strategy, 0.5, trials=3_000, rng=rng
        )
        assert result.miss_rate > 0.0
        assert result.cost_inflation > 1.0

    def test_single_round_immune_to_movement(self, rng):
        """d = 1 pages everything at once: no movement window exists."""
        instance = random_instance(rng, num_devices=2, num_cells=6, max_rounds=1)
        plan = conference_call_heuristic(instance)
        result = measure_movement_sensitivity(
            instance, plan.strategy, 0.9, trials=1_000, rng=rng
        )
        assert result.miss_rate == 0.0
        assert result.mean_cells_paged == 6.0

    def test_neighbor_constrained_movement(self, rng):
        """Graph-constrained movement is gentler than teleportation."""
        instance = random_instance(rng, num_devices=2, num_cells=6, max_rounds=4)
        plan = conference_call_heuristic(instance)
        line_neighbors = [
            [j for j in (i - 1, i + 1) if 0 <= j < 6] for i in range(6)
        ]
        constrained = measure_movement_sensitivity(
            instance,
            plan.strategy,
            0.4,
            trials=4_000,
            rng=np.random.default_rng(1),
            neighbors=line_neighbors,
        )
        free = measure_movement_sensitivity(
            instance, plan.strategy, 0.4, trials=4_000, rng=np.random.default_rng(1)
        )
        assert constrained.trials == free.trials
        assert constrained.miss_rate >= 0.0

    def test_single_search_outputs(self, rng):
        instance = random_instance(rng, num_devices=2, num_cells=6, max_rounds=3)
        plan = conference_call_heuristic(instance)
        cost, missed = simulate_search_with_movement(
            instance, plan.strategy, 0.0, rng
        )
        assert not missed
        assert 1 <= cost <= 6

    def test_rejects_zero_trials(self, rng):
        instance = random_instance(rng, num_devices=2, num_cells=6, max_rounds=3)
        plan = conference_call_heuristic(instance)
        with pytest.raises(ValueError):
            measure_movement_sensitivity(
                instance, plan.strategy, 0.1, trials=0, rng=rng
            )
