"""Unit tests for the convexity-lemma verifications."""

import pytest

from repro.analysis import (
    alpha_monotonicity,
    grid_check_lemma31,
    grid_check_lemma34,
    lemma31_stationarity_residual,
    lemma34_claimed_chain,
    refine_lemma31_with_scipy,
    refine_lemma34_with_scipy,
)
from repro.core import b_sequence, lemma34_objective


class TestLemma31:
    @pytest.mark.parametrize("c", [3, 6, 9, 15])
    def test_grid_never_beats_claim(self, c):
        check = grid_check_lemma31(c, grid=120)
        assert check.claim_holds
        assert check.claimed_value >= check.best_found_value - 1e-9

    def test_grid_best_near_claimed_point(self):
        check = grid_check_lemma31(9, grid=300)
        assert check.best_found_point[0] == pytest.approx(0.5, abs=0.02)
        assert check.best_found_point[1] == pytest.approx(6.0, abs=0.1)

    @pytest.mark.parametrize("c", [3, 9])
    def test_gradient_vanishes(self, c):
        gx, gy = lemma31_stationarity_residual(c)
        assert abs(gx) < 1e-3
        assert abs(gy) < 1e-3

    def test_scipy_refinement_confirms(self):
        check = refine_lemma31_with_scipy(9)
        if check is None:
            pytest.skip("scipy unavailable")
        assert check.claim_holds
        assert check.best_found_point[0] == pytest.approx(0.5, abs=1e-4)
        assert check.best_found_point[1] == pytest.approx(6.0, abs=1e-3)


class TestLemma34:
    @pytest.mark.parametrize("m,d,c", [(2, 2, 9.0), (2, 3, 12.0), (3, 4, 20.0)])
    def test_random_chains_never_beat_claim(self, m, d, c):
        check = grid_check_lemma34(m, d, c, samples=30_000)
        assert check.claim_holds

    def test_claimed_chain_matches_b_sequence(self):
        chain = lemma34_claimed_chain(2, 3, 12.0)
        bs = b_sequence(2, 3, 12.0)
        assert chain == pytest.approx(tuple(bs[1:]))

    def test_scipy_refinement_confirms(self):
        check = refine_lemma34_with_scipy(2, 3, 12.0)
        if check is None:
            pytest.skip("scipy unavailable")
        assert check.claim_holds
        assert check.best_found_value == pytest.approx(check.claimed_value, rel=1e-6)

    def test_perturbing_claimed_chain_hurts(self):
        m, d, c = 3, 3, 12.0
        chain = list(lemma34_claimed_chain(m, d, c))
        base = lemma34_objective(chain, m)
        for index in range(d - 1):
            for delta in (-0.05, 0.05):
                perturbed = list(chain)
                perturbed[index] += delta
                assert lemma34_objective(perturbed, m) < base


class TestAlphaMonotonicity:
    @pytest.mark.parametrize("m,d", [(2, 3), (2, 6), (3, 4), (5, 5)])
    def test_holds(self, m, d):
        assert alpha_monotonicity(m, d)
