"""Unit tests for the Section 4 inequality checks."""

import numpy as np
import pytest

from repro.analysis import (
    E_FACTOR,
    check_lemma44,
    check_lemma45,
    check_proposition41,
    check_proposition42,
    lemma45_margin,
    proposition42_margin,
)


class TestProposition41:
    def test_holds_over_samples(self):
        check = check_proposition41(samples=20_000)
        assert check.holds
        assert check.samples > 0

    def test_tight_at_boundary(self):
        """(a1, a2, b) = (x-1, 1, 0) makes the bound exact."""
        x = 1.5
        product = (x - 1 + 0) * (1 + 0)
        assert product == pytest.approx(x - 1)


class TestLemma44:
    @pytest.mark.parametrize("m", [2, 3, 4])
    def test_holds(self, m):
        check = check_lemma44(m, samples=15_000)
        assert check.holds

    def test_rejects_m_below_two(self):
        with pytest.raises(ValueError):
            check_lemma44(1)

    def test_tight_configuration(self):
        """All pairs at 1 except one at x - m + 1: product = x - m + 1."""
        m, x = 3, 2.4
        values = [1.0] * (m - 1) + [x - m + 1]
        assert np.prod(values) == pytest.approx(x - m + 1)


class TestProposition42:
    def test_holds_on_grid(self):
        check = check_proposition42(num_cells=10.0, grid=200)
        assert check.holds

    def test_margin_zero_at_tight_point(self):
        """x = 1, s = c is an equality case of the proof."""
        c = 10.0
        assert proposition42_margin(c, 1.0, c) == pytest.approx(0.0)

    def test_margin_zero_at_x_two_s_c(self):
        c = 10.0
        assert proposition42_margin(c, 2.0, c) == pytest.approx(0.0)


class TestLemma45:
    @pytest.mark.parametrize("m,d", [(2, 2), (2, 4), (3, 3)])
    def test_holds(self, m, d):
        check = check_lemma45(m, d, samples=5_000)
        assert check.holds

    def test_margin_zero_at_all_m_corner(self):
        """x_r = m for all r with s-sum = c is the equality case."""
        m, c = 2, 10.0
        sizes = (4.0, 6.0)  # s_2 + s_3 = c, k = d - 1 = 2
        margin = lemma45_margin((float(m), float(m)), sizes, m, c)
        assert margin == pytest.approx(0.0, abs=1e-9)

    def test_factor_constant(self):
        assert E_FACTOR == pytest.approx(1.5819767, abs=1e-6)
