"""Unit tests for the approximation-ratio harness."""

import math

import pytest

from repro.analysis import (
    RatioSample,
    RatioSummary,
    compare_strategies,
    measure_ratio,
    measure_special_case_ratio,
    ratio_sweep_summary,
    sweep_ratios,
)
from repro.core import Strategy, lower_bound_instance
from tests.conftest import random_instance


class TestRatioSample:
    def test_ratio_computation(self):
        sample = RatioSample(6.0, 4.0, 2, 8, 2)
        assert sample.ratio == pytest.approx(1.5)

    def test_zero_optimal_guard(self):
        sample = RatioSample(0.0, 0.0, 1, 1, 1)
        assert sample.ratio == 1.0


class TestMeasure:
    def test_gadget_ratio(self):
        sample = measure_ratio(lower_bound_instance())
        assert sample.ratio == pytest.approx(320 / 317)

    def test_special_case_measure(self):
        sample = measure_special_case_ratio(lower_bound_instance())
        assert sample.ratio == pytest.approx(320 / 317)

    def test_ratio_at_least_one(self, rng):
        for _ in range(5):
            sample = measure_ratio(random_instance(rng, num_cells=6))
            assert sample.ratio >= 1.0 - 1e-9


class TestSweep:
    def factory(self, generator):
        return random_instance(generator, num_devices=2, num_cells=6, max_rounds=2)

    def test_sweep_counts(self, rng):
        samples = sweep_ratios(self.factory, trials=7, rng=rng)
        assert len(samples) == 7

    def test_summary_statistics(self, rng):
        summary = ratio_sweep_summary(self.factory, trials=10, rng=rng)
        assert summary.count == 10
        assert 1.0 <= summary.mean_ratio <= summary.max_ratio
        assert summary.max_ratio <= math.e / (math.e - 1) + 1e-9
        assert summary.worst_sample is not None

    def test_empty_summary(self):
        summary = RatioSummary.from_samples([])
        assert summary.count == 0
        assert summary.worst_sample is None


class TestCompareStrategies:
    def test_sorted_by_value(self, rng):
        instance = random_instance(rng, num_cells=4, max_rounds=2)
        pairs = compare_strategies(
            instance,
            [
                ("blanket", Strategy.single_round(4)),
                ("split", Strategy.from_order_and_sizes((0, 1, 2, 3), (2, 2))),
            ],
        )
        values = [value for _label, value in pairs]
        assert values == sorted(values)
        assert pairs[0][0] == "split"  # splitting always beats blanket here
