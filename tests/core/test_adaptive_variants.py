"""Unit tests for adaptive quorum (Yellow Pages / Signature) search."""

import itertools
from fractions import Fraction

import pytest

from repro.core import (
    adaptive_quorum_expected_paging,
    adaptive_quorum_monte_carlo,
    adaptive_quorum_search,
    adaptive_yellow_pages_expected_paging,
    adaptive_expected_paging,
    signature_heuristic,
    yellow_pages_greedy,
)
from repro.errors import InvalidInstanceError, InvalidStrategyError
from tests.conftest import random_exact_instance, random_instance


class TestSearch:
    def test_stops_at_quorum(self, rng):
        instance = random_instance(rng, num_devices=4, num_cells=8, max_rounds=3)
        for _ in range(10):
            locations = instance.sample_locations(rng)
            trace = adaptive_quorum_search(instance, 2, locations)
            assert len(trace.devices_found) >= 2
            assert trace.rounds_used <= instance.max_rounds

    def test_quorum_one_stops_at_first_hit(self, rng):
        instance = random_instance(rng, num_devices=3, num_cells=6, max_rounds=3)
        locations = instance.sample_locations(rng)
        trace = adaptive_quorum_search(instance, 1, locations)
        assert len(trace.devices_found) >= 1
        paged = {cell for group in trace.groups for cell in group}
        assert any(locations[d] in paged for d in range(3))

    def test_rejects_bad_quorum(self, rng):
        instance = random_instance(rng, num_devices=2, num_cells=5)
        with pytest.raises(InvalidInstanceError):
            adaptive_quorum_search(instance, 3, (0, 1))

    def test_rejects_wrong_locations(self, rng):
        instance = random_instance(rng, num_devices=2, num_cells=5)
        with pytest.raises(InvalidStrategyError):
            adaptive_quorum_search(instance, 1, (0,))


class TestExactExpectation:
    def test_matches_full_enumeration(self, rng):
        """Tree recursion equals the exhaustive expectation over outcomes."""
        instance = random_exact_instance(rng, num_devices=2, num_cells=4, max_rounds=3)
        for quorum in (1, 2):
            total = Fraction(0)
            for locations in itertools.product(range(4), repeat=2):
                probability = Fraction(1)
                for device, cell in enumerate(locations):
                    probability *= Fraction(instance.probability(device, cell))
                if probability == 0:
                    continue
                trace = adaptive_quorum_search(instance, quorum, locations)
                total += probability * trace.cells_paged
            assert total == adaptive_quorum_expected_paging(instance, quorum)

    def test_matches_monte_carlo(self, rng):
        instance = random_instance(rng, num_devices=3, num_cells=6, max_rounds=3)
        exact = adaptive_quorum_expected_paging(instance, 2)
        estimate = adaptive_quorum_monte_carlo(
            instance, 2, trials=12_000, rng=rng
        )
        assert estimate == pytest.approx(float(exact), abs=0.1)

    def test_monotone_in_quorum(self, rng):
        instance = random_instance(rng, num_devices=3, num_cells=7, max_rounds=3)
        values = [
            float(adaptive_quorum_expected_paging(instance, quorum))
            for quorum in (1, 2, 3)
        ]
        assert values[0] <= values[1] + 1e-9 <= values[2] + 2e-9

    def test_full_quorum_matches_conference_adaptive(self, rng):
        """k = m with per-quorum replanning equals the Conference adaptive."""
        instance = random_instance(rng, num_devices=2, num_cells=6, max_rounds=3)
        quorum_value = float(adaptive_quorum_expected_paging(instance, 2))
        conference_value = float(adaptive_expected_paging(instance))
        assert quorum_value == pytest.approx(conference_value)

    def test_adaptive_yellow_beats_or_matches_oblivious(self, rng):
        for _ in range(6):
            instance = random_instance(rng, num_devices=3, num_cells=6, max_rounds=3)
            adaptive = float(adaptive_yellow_pages_expected_paging(instance))
            oblivious = float(yellow_pages_greedy(instance).expected_paging)
            # Different orderings, so no theorem — but adaptivity with the
            # weight order should stay competitive with the greedy oblivious.
            assert adaptive <= oblivious * 1.5

    def test_adaptive_signature_competitive_with_oblivious(self, rng):
        """Replanning usually helps; it is NOT a per-instance theorem
        (the conditioned weight order can differ from the original order's
        tail), so this asserts the aggregate and a small per-instance slack.
        """
        adaptive_values, oblivious_values = [], []
        for _ in range(6):
            instance = random_instance(rng, num_devices=3, num_cells=6, max_rounds=3)
            adaptive = float(adaptive_quorum_expected_paging(instance, 2))
            oblivious = float(signature_heuristic(instance, 2).expected_paging)
            adaptive_values.append(adaptive)
            oblivious_values.append(oblivious)
            assert adaptive <= oblivious * 1.05
        assert sum(adaptive_values) <= sum(oblivious_values)

    def test_rejects_zero_trials(self, rng):
        instance = random_instance(rng, num_devices=2, num_cells=5)
        with pytest.raises(ValueError):
            adaptive_quorum_monte_carlo(instance, 1, trials=0, rng=rng)


class TestOptimalAdaptiveQuorum:
    def test_lower_bounds_the_replanner(self, rng):
        from repro.core import optimal_adaptive_quorum_expected_paging

        for _ in range(5):
            instance = random_instance(rng, num_devices=2, num_cells=6, max_rounds=3)
            for quorum in (1, 2):
                optimal = float(
                    optimal_adaptive_quorum_expected_paging(instance, quorum)
                )
                replanner = float(adaptive_quorum_expected_paging(instance, quorum))
                assert optimal <= replanner + 1e-9

    def test_lower_bounds_the_oblivious_optimum(self, rng):
        from repro.core import (
            optimal_adaptive_quorum_expected_paging,
            optimal_signature,
            optimal_yellow_pages,
        )

        instance = random_instance(rng, num_devices=3, num_cells=6, max_rounds=3)
        adaptive_yellow = float(optimal_adaptive_quorum_expected_paging(instance, 1))
        oblivious_yellow = float(optimal_yellow_pages(instance).expected_paging)
        assert adaptive_yellow <= oblivious_yellow + 1e-9
        adaptive_signature = float(
            optimal_adaptive_quorum_expected_paging(instance, 2)
        )
        oblivious_signature = float(optimal_signature(instance, 2).expected_paging)
        assert adaptive_signature <= oblivious_signature + 1e-9

    def test_full_quorum_matches_conference_adaptive_optimum(self, rng):
        from repro.core import (
            optimal_adaptive_expected_paging,
            optimal_adaptive_quorum_expected_paging,
        )

        instance = random_instance(rng, num_devices=2, num_cells=5, max_rounds=3)
        quorum_value = float(optimal_adaptive_quorum_expected_paging(instance, 2))
        conference_value = float(
            optimal_adaptive_expected_paging(instance).expected_paging
        )
        assert quorum_value == pytest.approx(conference_value)

    def test_d_equals_one_is_blanket(self, rng):
        from repro.core import optimal_adaptive_quorum_expected_paging

        instance = random_instance(rng, num_devices=2, num_cells=5, max_rounds=1)
        assert float(
            optimal_adaptive_quorum_expected_paging(instance, 1)
        ) == pytest.approx(5.0)

    def test_cell_limit(self):
        from repro.core import PagingInstance, optimal_adaptive_quorum_expected_paging
        from repro.errors import SolverLimitError

        instance = PagingInstance.uniform(2, 13, 2)
        with pytest.raises(SolverLimitError):
            optimal_adaptive_quorum_expected_paging(instance, 1)
