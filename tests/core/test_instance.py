"""Unit tests for repro.core.instance."""

from fractions import Fraction

import numpy as np
import pytest

from repro.core import PagingInstance
from repro.errors import InvalidInstanceError


class TestValidation:
    def test_rejects_empty_matrix(self):
        with pytest.raises(InvalidInstanceError):
            PagingInstance([], max_rounds=1)

    def test_rejects_empty_rows(self):
        with pytest.raises(InvalidInstanceError):
            PagingInstance([[]], max_rounds=1)

    def test_rejects_row_not_summing_to_one_exact(self):
        with pytest.raises(InvalidInstanceError, match="sums to"):
            PagingInstance([[Fraction(1, 2), Fraction(1, 4)]], max_rounds=1)

    def test_rejects_row_not_summing_to_one_float(self):
        with pytest.raises(InvalidInstanceError, match="sums to"):
            PagingInstance([[0.5, 0.4]], max_rounds=1)

    def test_accepts_float_rows_within_tolerance(self):
        third = 1.0 / 3.0
        instance = PagingInstance([[third, third, third]], max_rounds=1)
        assert instance.num_cells == 3

    def test_rejects_zero_probability_by_default(self):
        with pytest.raises(InvalidInstanceError, match="strictly positive"):
            PagingInstance([[Fraction(0), Fraction(1)]], max_rounds=1)

    def test_allows_zero_probability_when_requested(self):
        instance = PagingInstance(
            [[Fraction(0), Fraction(1)]], max_rounds=1, allow_zero=True
        )
        assert instance.probability(0, 0) == 0

    def test_rejects_negative_probability(self):
        with pytest.raises(InvalidInstanceError):
            PagingInstance(
                [[Fraction(-1, 4), Fraction(5, 4)]], max_rounds=1, allow_zero=True
            )

    def test_rejects_bad_max_rounds(self):
        row = [Fraction(1, 3)] * 3
        with pytest.raises(InvalidInstanceError, match="max_rounds"):
            PagingInstance([row], max_rounds=0)
        with pytest.raises(InvalidInstanceError, match="max_rounds"):
            PagingInstance([row], max_rounds=4)

    def test_rejects_ragged_rows(self):
        with pytest.raises(InvalidInstanceError, match="length"):
            PagingInstance(
                [[Fraction(1, 2), Fraction(1, 2)], [Fraction(1)]], max_rounds=1
            )


class TestAccessors:
    def test_dimensions(self, exact_instance):
        assert exact_instance.num_devices == 2
        assert exact_instance.num_cells == 4
        assert exact_instance.max_rounds == 2

    def test_exactness_flags(self, exact_instance, small_instance):
        assert exact_instance.is_exact
        assert not small_instance.is_exact

    def test_row_and_probability(self, exact_instance):
        assert exact_instance.row(0)[0] == Fraction(1, 2)
        assert exact_instance.probability(1, 3) == Fraction(1, 2)

    def test_as_array_round_trips(self, exact_instance):
        array = exact_instance.as_array()
        assert array.shape == (2, 4)
        assert array[0, 0] == pytest.approx(0.5)

    def test_cell_weights(self, exact_instance):
        weights = exact_instance.cell_weights()
        assert weights[0] == Fraction(5, 8)
        assert sum(weights) == 2  # total expected devices

    def test_equality_and_hash(self, exact_instance):
        clone = PagingInstance(exact_instance.rows, 2)
        assert clone == exact_instance
        assert hash(clone) == hash(exact_instance)
        assert clone != exact_instance.with_max_rounds(1)


class TestPrefixProducts:
    def test_prefix_find_probabilities_manual(self, exact_instance):
        finds = exact_instance.prefix_find_probabilities((0, 1, 2, 3))
        assert finds[0] == 0
        assert finds[1] == Fraction(1, 2) * Fraction(1, 8)
        assert finds[2] == Fraction(3, 4) * Fraction(1, 4)
        assert finds[4] == 1

    def test_prefix_respects_order(self, exact_instance):
        finds = exact_instance.prefix_find_probabilities((3, 2, 1, 0))
        assert finds[1] == Fraction(1, 8) * Fraction(1, 2)
        assert finds[4] == 1

    def test_float_instance_prefixes_sum_to_one(self, small_instance):
        order = tuple(range(small_instance.num_cells))
        finds = small_instance.prefix_find_probabilities(order)
        assert finds[-1] == pytest.approx(1.0)
        assert all(
            finds[i] <= finds[i + 1] + 1e-12 for i in range(len(finds) - 1)
        ), "find probabilities must be monotone along the prefix"


class TestTransformations:
    def test_with_max_rounds(self, exact_instance):
        changed = exact_instance.with_max_rounds(4)
        assert changed.max_rounds == 4
        assert changed.rows == exact_instance.rows

    def test_restrict_renormalizes(self, exact_instance):
        sub, mapping = exact_instance.restrict([0], [2, 3], max_rounds=2)
        assert mapping == (2, 3)
        assert sub.row(0) == (Fraction(1, 2), Fraction(1, 2))

    def test_restrict_multiple_devices(self, exact_instance):
        sub, _mapping = exact_instance.restrict([0, 1], [0, 1], max_rounds=1)
        assert sub.num_devices == 2
        assert sum(sub.row(0)) == 1
        assert sum(sub.row(1)) == 1

    def test_restrict_rejects_zero_mass(self):
        instance = PagingInstance(
            [[Fraction(1), Fraction(0)]], max_rounds=1, allow_zero=True
        )
        with pytest.raises(InvalidInstanceError, match="zero probability"):
            instance.restrict([0], [1], max_rounds=1)

    def test_restrict_rejects_empty(self, exact_instance):
        with pytest.raises(InvalidInstanceError):
            exact_instance.restrict([], [0], max_rounds=1)

    def test_to_float(self, exact_instance):
        converted = exact_instance.to_float()
        assert not converted.is_exact
        assert converted.probability(0, 0) == pytest.approx(0.5)


class TestConstructors:
    def test_uniform(self):
        instance = PagingInstance.uniform(3, 5, 2, exact=True)
        assert instance.probability(2, 4) == Fraction(1, 5)
        assert instance.is_exact

    def test_uniform_float(self):
        instance = PagingInstance.uniform(1, 4, 2)
        assert instance.probability(0, 0) == pytest.approx(0.25)

    def test_single_device(self):
        instance = PagingInstance.single_device(
            [Fraction(1, 2), Fraction(1, 2)], max_rounds=2
        )
        assert instance.num_devices == 1

    def test_from_array_renormalizes(self):
        instance = PagingInstance.from_array(np.array([[2.0, 2.0, 4.0]]), 2)
        assert instance.probability(0, 2) == pytest.approx(0.5)

    def test_from_array_rejects_bad_shapes(self):
        with pytest.raises(InvalidInstanceError):
            PagingInstance.from_array(np.ones(3), 1)
        with pytest.raises(InvalidInstanceError):
            PagingInstance.from_array(np.zeros((1, 3)), 1)


class TestSampling:
    def test_sample_locations_shape(self, small_instance, rng):
        locations = small_instance.sample_locations(rng)
        assert len(locations) == small_instance.num_devices
        assert all(0 <= cell < small_instance.num_cells for cell in locations)

    def test_sampling_matches_distribution(self, rng):
        instance = PagingInstance([[0.9, 0.1]], max_rounds=1)
        draws = [instance.sample_locations(rng)[0] for _ in range(2_000)]
        frequency = draws.count(0) / len(draws)
        assert 0.85 < frequency < 0.95
