"""Unit tests for the e/(e-1) heuristic (Theorem 4.8)."""

import math

import pytest

from repro.core import (
    APPROXIMATION_FACTOR,
    LOWER_BOUND_RATIO,
    conference_call_heuristic,
    expected_paging_float,
    guarantee_bound,
    optimal_strategy,
)
from repro.distributions import instance_family
from tests.conftest import random_exact_instance, random_instance


class TestConstants:
    def test_factor_value(self):
        assert APPROXIMATION_FACTOR == pytest.approx(math.e / (math.e - 1))
        assert 1.58 < APPROXIMATION_FACTOR < 1.59

    def test_lower_bound_value(self):
        assert LOWER_BOUND_RATIO == pytest.approx(320 / 317)

    def test_guarantee_bound(self):
        assert guarantee_bound(10.0) == pytest.approx(10 * APPROXIMATION_FACTOR)


class TestGuarantee:
    def test_within_factor_on_random_instances(self, rng):
        for _ in range(12):
            instance = random_instance(rng, num_devices=2, num_cells=7, max_rounds=3)
            heuristic = conference_call_heuristic(instance)
            optimum = optimal_strategy(instance)
            assert float(heuristic.expected_paging) <= APPROXIMATION_FACTOR * float(
                optimum.expected_paging
            ) + 1e-9

    def test_within_factor_exact_arithmetic(self, rng):
        for _ in range(6):
            instance = random_exact_instance(rng, num_cells=6, max_rounds=2)
            heuristic = conference_call_heuristic(instance)
            optimum = optimal_strategy(instance)
            assert float(heuristic.expected_paging / optimum.expected_paging) <= (
                APPROXIMATION_FACTOR + 1e-12
            )

    def test_within_factor_on_families(self, rng):
        for family in ("zipf", "hotspot", "adversarial"):
            instance = instance_family(family, 2, 8, 2, rng=rng)
            heuristic = conference_call_heuristic(instance)
            optimum = optimal_strategy(instance)
            ratio = float(heuristic.expected_paging) / float(optimum.expected_paging)
            assert ratio <= APPROXIMATION_FACTOR + 1e-9

    def test_never_below_optimum(self, rng):
        for _ in range(8):
            instance = random_instance(rng, num_devices=3, num_cells=6, max_rounds=3)
            heuristic = conference_call_heuristic(instance)
            optimum = optimal_strategy(instance)
            assert float(heuristic.expected_paging) >= float(
                optimum.expected_paging
            ) - 1e-9


class TestStructure:
    def test_value_matches_strategy(self, small_instance):
        result = conference_call_heuristic(small_instance)
        assert float(result.expected_paging) == pytest.approx(
            expected_paging_float(small_instance, result.strategy)
        )

    def test_uses_weight_nonincreasing_order(self, rng):
        instance = random_instance(rng, num_devices=3, num_cells=8, max_rounds=3)
        result = conference_call_heuristic(instance)
        weights = [float(instance.cell_weight(j)) for j in result.order]
        assert all(weights[i] >= weights[i + 1] - 1e-12 for i in range(len(weights) - 1))

    def test_respects_round_override(self, small_instance):
        result = conference_call_heuristic(small_instance, max_rounds=2)
        assert len(result.group_sizes) == 2

    def test_respects_bandwidth_cap(self, rng):
        instance = random_instance(rng, num_cells=8, max_rounds=4)
        result = conference_call_heuristic(instance, max_group_size=3)
        assert max(result.group_sizes) <= 3

    def test_m_equals_one_is_optimal(self, rng):
        """Lemma 4.6 note: for m = 1 the heuristic matches the optimum."""
        for _ in range(8):
            instance = random_instance(rng, num_devices=1, num_cells=8, max_rounds=3)
            heuristic = conference_call_heuristic(instance)
            optimum = optimal_strategy(instance)
            assert float(heuristic.expected_paging) == pytest.approx(
                float(optimum.expected_paging)
            )

    def test_deterministic(self, small_instance):
        first = conference_call_heuristic(small_instance)
        second = conference_call_heuristic(small_instance)
        assert first.strategy == second.strategy


class TestProfileHeuristic:
    def test_never_beats_the_dp(self, rng):
        """The DP optimizes over the same order, so it dominates."""
        from repro.core import profile_heuristic

        for _ in range(8):
            instance = random_instance(rng, num_devices=3, num_cells=9, max_rounds=3)
            dp = conference_call_heuristic(instance)
            profile = profile_heuristic(instance)
            assert float(profile.expected_paging) >= float(dp.expected_paging) - 1e-9

    def test_partitions_cells(self, rng):
        from repro.core import profile_heuristic

        instance = random_instance(rng, num_devices=2, num_cells=10, max_rounds=4)
        result = profile_heuristic(instance)
        assert sum(result.group_sizes) == 10
        assert len(result.group_sizes) == 4
        assert all(size >= 1 for size in result.group_sizes)

    def test_near_optimal_on_uniform(self):
        """Uniform inputs are what the b-profile was derived for."""
        from repro.core import PagingInstance, profile_heuristic

        instance = PagingInstance.uniform(2, 12, 3)
        dp = conference_call_heuristic(instance)
        profile = profile_heuristic(instance)
        assert float(profile.expected_paging) <= float(dp.expected_paging) * 1.02

    def test_single_device_equal_groups(self, rng):
        from repro.core import profile_heuristic

        instance = random_instance(rng, num_devices=1, num_cells=9, max_rounds=3)
        result = profile_heuristic(instance)
        assert result.group_sizes == (3, 3, 3)

    def test_single_round(self, rng):
        from repro.core import profile_heuristic

        instance = random_instance(rng, num_devices=2, num_cells=6, max_rounds=1)
        assert profile_heuristic(instance).group_sizes == (6,)
