"""Unit tests for adaptive paging (Section 5)."""

import pytest

from repro.core import (
    adaptive_expected_paging,
    adaptive_monte_carlo,
    adaptive_search,
    conference_call_heuristic,
    optimal_strategy,
)
from repro.errors import InvalidStrategyError
from tests.conftest import random_exact_instance, random_instance


class TestSearch:
    def test_finds_all_devices_within_budget(self, rng):
        for _ in range(10):
            instance = random_instance(rng, num_devices=3, num_cells=7, max_rounds=3)
            locations = instance.sample_locations(rng)
            trace = adaptive_search(instance, locations)
            assert trace.rounds_used <= instance.max_rounds
            paged = {cell for group in trace.groups for cell in group}
            assert set(locations) <= paged

    def test_groups_are_disjoint(self, rng):
        instance = random_instance(rng, num_devices=2, num_cells=8, max_rounds=4)
        locations = instance.sample_locations(rng)
        trace = adaptive_search(instance, locations)
        flattened = [cell for group in trace.groups for cell in group]
        assert len(flattened) == len(set(flattened))
        assert trace.cells_paged == len(flattened)

    def test_rejects_wrong_location_count(self, small_instance):
        with pytest.raises(InvalidStrategyError):
            adaptive_search(small_instance, (0,))

    def test_single_round_budget_pages_everything(self, rng):
        instance = random_instance(rng, num_devices=2, num_cells=5, max_rounds=1)
        locations = instance.sample_locations(rng)
        trace = adaptive_search(instance, locations)
        assert trace.rounds_used == 1
        assert trace.cells_paged == 5


class TestExactExpectation:
    def test_matches_monte_carlo(self, rng):
        instance = random_instance(rng, num_devices=2, num_cells=6, max_rounds=3)
        exact = adaptive_expected_paging(instance)
        estimate = adaptive_monte_carlo(instance, trials=15_000, rng=rng)
        assert estimate == pytest.approx(float(exact), abs=0.1)

    def test_exact_arithmetic(self, rng):
        from fractions import Fraction

        instance = random_exact_instance(rng, num_cells=5, max_rounds=2)
        value = adaptive_expected_paging(instance)
        assert isinstance(value, Fraction)

    def test_never_worse_than_oblivious_heuristic(self, rng):
        """Replanning with the same planner can only use strictly more info."""
        for _ in range(8):
            instance = random_instance(rng, num_devices=2, num_cells=6, max_rounds=3)
            adaptive = float(adaptive_expected_paging(instance))
            oblivious = float(conference_call_heuristic(instance).expected_paging)
            assert adaptive <= oblivious + 1e-9

    def test_bounded_by_cell_count(self, rng):
        instance = random_instance(rng, num_devices=2, num_cells=6, max_rounds=3)
        value = float(adaptive_expected_paging(instance))
        assert 1.0 <= value <= instance.num_cells + 1e-9

    def test_d_equals_one_is_blanket(self, rng):
        instance = random_instance(rng, num_devices=2, num_cells=5, max_rounds=1)
        assert float(adaptive_expected_paging(instance)) == pytest.approx(5.0)

    def test_custom_planner(self, rng):
        """Replanning with the exact solver does at least as well."""
        instance = random_instance(rng, num_devices=2, num_cells=6, max_rounds=3)
        with_heuristic = float(adaptive_expected_paging(instance))
        with_exact = float(
            adaptive_expected_paging(instance, planner=optimal_strategy)
        )
        assert with_exact <= with_heuristic + 1e-9

    def test_monte_carlo_rejects_zero_trials(self, small_instance, rng):
        with pytest.raises(ValueError):
            adaptive_monte_carlo(small_instance, trials=0, rng=rng)

    def test_tree_expectation_equals_full_enumeration(self, rng):
        """The subset-tree recursion equals the exhaustive expectation.

        Enumerates every joint location outcome, replays the adaptive policy
        against it, and weights by the outcome probability — an independent
        exact computation of the same expectation.
        """
        import itertools
        from fractions import Fraction

        instance = random_exact_instance(rng, num_devices=2, num_cells=4, max_rounds=3)
        total = Fraction(0)
        for locations in itertools.product(range(4), repeat=2):
            probability = Fraction(1)
            for device, cell in enumerate(locations):
                probability *= Fraction(instance.probability(device, cell))
            if probability == 0:
                continue
            trace = adaptive_search(instance, locations)
            total += probability * trace.cells_paged
        assert total == adaptive_expected_paging(instance)
