"""Unit tests for the exact optimal adaptive solver."""

from fractions import Fraction

import pytest

from repro.core import (
    PagingInstance,
    adaptive_expected_paging,
    adaptivity_gap,
    optimal_adaptive_expected_paging,
    optimal_strategy,
)
from repro.errors import SolverLimitError
from tests.conftest import random_exact_instance, random_instance


class TestBounds:
    def test_never_above_optimal_oblivious(self, rng):
        """Every oblivious strategy is an adaptive strategy."""
        for _ in range(8):
            instance = random_instance(rng, num_devices=2, num_cells=6, max_rounds=3)
            adaptive = optimal_adaptive_expected_paging(instance)
            oblivious = optimal_strategy(instance)
            assert float(adaptive.expected_paging) <= float(
                oblivious.expected_paging
            ) + 1e-9

    def test_never_above_replanning_heuristic(self, rng):
        for _ in range(6):
            instance = random_instance(rng, num_devices=2, num_cells=6, max_rounds=3)
            optimal = float(
                optimal_adaptive_expected_paging(instance).expected_paging
            )
            replanner = float(adaptive_expected_paging(instance))
            assert optimal <= replanner + 1e-9

    def test_at_least_one_cell(self, rng):
        instance = random_instance(rng, num_devices=2, num_cells=5, max_rounds=3)
        result = optimal_adaptive_expected_paging(instance)
        assert float(result.expected_paging) >= 1.0


class TestSpecialCases:
    def test_d_equals_one_is_blanket(self, rng):
        instance = random_instance(rng, num_devices=2, num_cells=5, max_rounds=1)
        result = optimal_adaptive_expected_paging(instance)
        assert float(result.expected_paging) == pytest.approx(5.0)
        assert result.first_group == (0, 1, 2, 3, 4)

    def test_single_device_adaptive_equals_oblivious(self, rng):
        """For m = 1 nothing is learned mid-search: no adaptivity gain."""
        for _ in range(5):
            instance = random_instance(rng, num_devices=1, num_cells=6, max_rounds=3)
            adaptive = optimal_adaptive_expected_paging(instance)
            oblivious = optimal_strategy(instance)
            assert float(adaptive.expected_paging) == pytest.approx(
                float(oblivious.expected_paging)
            )

    def test_d_equals_two_adaptive_equals_oblivious(self, rng):
        """Section 5: for d = 2 any adaptive strategy is oblivious."""
        for _ in range(5):
            instance = random_instance(rng, num_devices=2, num_cells=6, max_rounds=2)
            adaptive = optimal_adaptive_expected_paging(instance)
            oblivious = optimal_strategy(instance)
            assert float(adaptive.expected_paging) == pytest.approx(
                float(oblivious.expected_paging)
            )

    def test_exact_arithmetic(self, rng):
        instance = random_exact_instance(rng, num_devices=2, num_cells=5, max_rounds=3)
        result = optimal_adaptive_expected_paging(instance)
        assert isinstance(result.expected_paging, Fraction)

    def test_cell_limit(self):
        instance = PagingInstance.uniform(2, 13, 3)
        with pytest.raises(SolverLimitError):
            optimal_adaptive_expected_paging(instance)


class TestGap:
    def test_gap_at_least_one(self, rng):
        for _ in range(5):
            instance = random_instance(rng, num_devices=2, num_cells=6, max_rounds=3)
            oblivious, adaptive, ratio = adaptivity_gap(instance)
            assert ratio >= 1.0 - 1e-12
            assert float(adaptive) <= float(oblivious) + 1e-9

    def test_gap_exists_for_some_instance(self, rng):
        """Adaptivity genuinely helps on at least some d >= 3 instances."""
        found = False
        for _ in range(12):
            instance = random_instance(rng, num_devices=2, num_cells=6, max_rounds=3)
            _o, _a, ratio = adaptivity_gap(instance)
            if ratio > 1.0 + 1e-6:
                found = True
                break
        assert found
