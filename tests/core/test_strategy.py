"""Unit tests for repro.core.strategy."""

import pytest

from repro.core import Strategy
from repro.errors import InvalidStrategyError


class TestValidation:
    def test_valid_partition(self):
        strategy = Strategy([[0, 2], [1], [3, 4]])
        assert strategy.length == 3
        assert strategy.num_cells == 5

    def test_rejects_empty_strategy(self):
        with pytest.raises(InvalidStrategyError):
            Strategy([])

    def test_rejects_empty_group(self):
        with pytest.raises(InvalidStrategyError, match="empty"):
            Strategy([[0], []])

    def test_rejects_duplicate_cells(self):
        with pytest.raises(InvalidStrategyError, match="more than one"):
            Strategy([[0, 1], [1, 2]])

    def test_rejects_non_contiguous_cells(self):
        with pytest.raises(InvalidStrategyError, match="partition"):
            Strategy([[0, 2]])

    def test_duplicates_within_group_collapse(self):
        strategy = Strategy([[0, 0, 1]])
        assert strategy.group(0) == frozenset({0, 1})


class TestAccessors:
    def test_group_sizes(self):
        strategy = Strategy([[0, 1, 2], [3], [4, 5]])
        assert strategy.group_sizes() == (3, 1, 2)

    def test_prefixes(self):
        strategy = Strategy([[1, 0], [2]])
        assert strategy.prefixes() == (frozenset({0, 1}), frozenset({0, 1, 2}))

    def test_round_of_cell(self):
        strategy = Strategy([[0], [2, 1]])
        assert strategy.round_of_cell(0) == 0
        assert strategy.round_of_cell(1) == 1
        with pytest.raises(InvalidStrategyError):
            strategy.round_of_cell(9)

    def test_cells_in_order(self):
        strategy = Strategy([[2, 0], [1]])
        assert strategy.cells_in_order() == (0, 2, 1)

    def test_iteration_and_len(self):
        strategy = Strategy([[0], [1]])
        assert len(strategy) == 2
        assert list(strategy) == [frozenset({0}), frozenset({1})]


class TestConstructors:
    def test_from_assignment(self):
        strategy = Strategy.from_assignment([0, 1, 0, 2])
        assert strategy.group(0) == frozenset({0, 2})
        assert strategy.group(2) == frozenset({3})

    def test_from_assignment_rejects_empty(self):
        with pytest.raises(InvalidStrategyError):
            Strategy.from_assignment([])

    def test_from_assignment_rejects_gap(self):
        # Label 1 is skipped -> group 1 would be empty.
        with pytest.raises(InvalidStrategyError):
            Strategy.from_assignment([0, 2, 2])

    def test_from_order_and_sizes(self):
        strategy = Strategy.from_order_and_sizes((3, 1, 0, 2), (2, 2))
        assert strategy.group(0) == frozenset({3, 1})
        assert strategy.group(1) == frozenset({0, 2})

    def test_from_order_and_sizes_rejects_mismatch(self):
        with pytest.raises(InvalidStrategyError, match="sum"):
            Strategy.from_order_and_sizes((0, 1, 2), (2, 2))

    def test_from_order_and_sizes_rejects_zero_size(self):
        with pytest.raises(InvalidStrategyError, match="positive"):
            Strategy.from_order_and_sizes((0, 1), (2, 0))

    def test_single_round(self):
        strategy = Strategy.single_round(4)
        assert strategy.length == 1
        assert strategy.group(0) == frozenset(range(4))

    def test_sequential(self):
        strategy = Strategy.sequential(3)
        assert strategy.group_sizes() == (1, 1, 1)
        assert strategy.round_of_cell(2) == 2


class TestEquality:
    def test_equality_ignores_order_within_group(self):
        assert Strategy([[0, 1], [2]]) == Strategy([[1, 0], [2]])

    def test_group_order_matters(self):
        assert Strategy([[0], [1]]) != Strategy([[1], [0]])

    def test_hashable(self):
        bucket = {Strategy([[0], [1]]), Strategy([[1], [0]]), Strategy([[0], [1]])}
        assert len(bucket) == 2
