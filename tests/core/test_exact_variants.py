"""Unit tests for the exact variant solvers (Yellow Pages / Signature)."""

import itertools

import pytest

from repro.core import (
    PagingInstance,
    Strategy,
    expected_paging_signature,
    expected_paging_yellow,
    optimal_signature,
    optimal_strategy,
    optimal_yellow_pages,
    yellow_pages_greedy,
)
from repro.errors import SolverLimitError
from tests.conftest import random_exact_instance, random_instance


def brute_force_variant(instance, d, evaluate):
    best = None
    for assignment in itertools.product(range(d), repeat=instance.num_cells):
        if len(set(assignment)) != d:
            continue
        strategy = Strategy.from_assignment(assignment)
        value = evaluate(instance, strategy)
        if best is None or value < best:
            best = value
    return best


class TestOptimalYellowPages:
    def test_matches_brute_force(self, rng):
        for _ in range(5):
            instance = random_instance(rng, num_devices=2, num_cells=6, max_rounds=2)
            exact = optimal_yellow_pages(instance)
            brute = brute_force_variant(instance, 2, expected_paging_yellow)
            assert float(exact.expected_paging) == pytest.approx(float(brute))

    def test_matches_brute_force_exact_arithmetic(self, rng):
        instance = random_exact_instance(rng, num_devices=3, num_cells=5, max_rounds=2)
        exact = optimal_yellow_pages(instance)
        brute = brute_force_variant(instance, 2, expected_paging_yellow)
        assert exact.expected_paging == brute

    def test_lower_bounds_the_greedy_heuristic(self, rng):
        for _ in range(5):
            instance = random_instance(rng, num_devices=3, num_cells=6, max_rounds=3)
            exact = optimal_yellow_pages(instance)
            greedy = yellow_pages_greedy(instance)
            assert float(exact.expected_paging) <= float(greedy.expected_paging) + 1e-9

    def test_cheaper_than_conference_optimum(self, rng):
        instance = random_instance(rng, num_devices=2, num_cells=6, max_rounds=2)
        yellow = optimal_yellow_pages(instance)
        conference = optimal_strategy(instance)
        assert float(yellow.expected_paging) <= float(conference.expected_paging) + 1e-9

    def test_value_matches_strategy(self, rng):
        instance = random_instance(rng, num_devices=2, num_cells=6, max_rounds=3)
        result = optimal_yellow_pages(instance)
        assert float(result.expected_paging) == pytest.approx(
            float(expected_paging_yellow(instance, result.strategy))
        )

    def test_cell_limit(self):
        instance = PagingInstance.uniform(2, 19, 2)
        with pytest.raises(SolverLimitError):
            optimal_yellow_pages(instance)


class TestOptimalSignature:
    def test_matches_brute_force(self, rng):
        instance = random_instance(rng, num_devices=3, num_cells=6, max_rounds=2)
        for quorum in (1, 2, 3):
            exact = optimal_signature(instance, quorum)
            brute = brute_force_variant(
                instance, 2, lambda i, s: expected_paging_signature(i, s, quorum)
            )
            assert float(exact.expected_paging) == pytest.approx(float(brute))

    def test_quorum_m_matches_conference_optimum(self, rng):
        instance = random_instance(rng, num_devices=2, num_cells=6, max_rounds=3)
        signature = optimal_signature(instance, 2)
        conference = optimal_strategy(instance)
        assert float(signature.expected_paging) == pytest.approx(
            float(conference.expected_paging)
        )

    def test_quorum_one_matches_yellow_optimum(self, rng):
        instance = random_instance(rng, num_devices=3, num_cells=6, max_rounds=2)
        signature = optimal_signature(instance, 1)
        yellow = optimal_yellow_pages(instance)
        assert float(signature.expected_paging) == pytest.approx(
            float(yellow.expected_paging)
        )

    def test_optimum_monotone_in_quorum(self, rng):
        instance = random_instance(rng, num_devices=3, num_cells=6, max_rounds=3)
        values = [
            float(optimal_signature(instance, quorum).expected_paging)
            for quorum in (1, 2, 3)
        ]
        assert values[0] <= values[1] + 1e-9 <= values[2] + 2e-9

    def test_rejects_bad_quorum(self, rng):
        instance = random_instance(rng, num_devices=2, num_cells=5)
        with pytest.raises(ValueError, match="quorum"):
            optimal_signature(instance, 3)

    def test_rule_label(self, rng):
        instance = random_instance(rng, num_devices=2, num_cells=5, max_rounds=2)
        assert optimal_signature(instance, 2).rule == "signature-2"
        assert optimal_yellow_pages(instance).rule == "yellow-pages"
