"""Unit tests for bandwidth-limited paging (Section 5)."""

import pytest

from repro.core import (
    bandwidth_limited_heuristic,
    bandwidth_limited_optimal,
    conference_call_heuristic,
    is_feasible,
    minimum_rounds,
    optimal_strategy,
)
from repro.errors import InfeasibleError
from tests.conftest import random_instance


class TestFeasibility:
    def test_minimum_rounds(self):
        assert minimum_rounds(10, 3) == 4
        assert minimum_rounds(9, 3) == 3
        assert minimum_rounds(1, 5) == 1

    def test_minimum_rounds_rejects_bad_cap(self):
        with pytest.raises(InfeasibleError):
            minimum_rounds(5, 0)

    def test_is_feasible(self):
        assert is_feasible(10, 4, 3)
        assert not is_feasible(10, 3, 3)
        assert not is_feasible(10, 0, 3)
        assert not is_feasible(10, 11, 1)


class TestHeuristicUnderCap:
    def test_cap_respected(self, rng):
        instance = random_instance(rng, num_cells=9, max_rounds=3)
        result = bandwidth_limited_heuristic(instance, 4)
        assert max(result.group_sizes) <= 4

    def test_infeasible_raises(self, rng):
        instance = random_instance(rng, num_cells=9, max_rounds=2)
        with pytest.raises(InfeasibleError):
            bandwidth_limited_heuristic(instance, 4)

    def test_loose_cap_matches_uncapped(self, rng):
        instance = random_instance(rng, num_cells=8, max_rounds=3)
        capped = bandwidth_limited_heuristic(instance, 8)
        uncapped = conference_call_heuristic(instance)
        assert float(capped.expected_paging) == pytest.approx(
            float(uncapped.expected_paging)
        )

    def test_ep_monotone_in_cap(self, rng):
        """Loosening the cap can only help."""
        instance = random_instance(rng, num_cells=8, max_rounds=4)
        values = [
            float(bandwidth_limited_heuristic(instance, b).expected_paging)
            for b in (2, 3, 5, 8)
        ]
        for i in range(len(values) - 1):
            assert values[i + 1] <= values[i] + 1e-12


class TestOptimalUnderCap:
    def test_cap_respected(self, rng):
        instance = random_instance(rng, num_cells=7, max_rounds=3)
        result = bandwidth_limited_optimal(instance, 3)
        assert max(result.strategy.group_sizes()) <= 3

    def test_heuristic_within_factor_of_capped_optimum(self, rng):
        from repro.core import APPROXIMATION_FACTOR

        for _ in range(5):
            instance = random_instance(rng, num_cells=7, max_rounds=3)
            heuristic = bandwidth_limited_heuristic(instance, 3)
            optimum = bandwidth_limited_optimal(instance, 3)
            assert float(heuristic.expected_paging) <= APPROXIMATION_FACTOR * float(
                optimum.expected_paging
            ) + 1e-9

    def test_capped_optimum_never_beats_uncapped(self, rng):
        instance = random_instance(rng, num_cells=7, max_rounds=3)
        capped = bandwidth_limited_optimal(instance, 3)
        uncapped = optimal_strategy(instance)
        assert float(capped.expected_paging) >= float(uncapped.expected_paging) - 1e-12

    def test_infeasible_raises(self, rng):
        instance = random_instance(rng, num_cells=7, max_rounds=2)
        with pytest.raises(InfeasibleError):
            bandwidth_limited_optimal(instance, 3)
