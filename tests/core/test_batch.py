"""Tests for the batched evaluation kernels (:mod:`repro.core.batch`)."""

import numpy as np
import pytest

from repro.core import (
    PagingInstance,
    Strategy,
    expected_paging_batch,
    expected_paging_float,
    expected_paging_monte_carlo,
    expected_paging_monte_carlo_fast,
    prefix_stops_float,
    sample_locations_batch,
    simulate_paging,
    simulate_paging_batch,
)


def _random_instance(rng, devices, cells, rounds):
    matrix = rng.dirichlet(np.ones(cells), size=devices)
    return PagingInstance.from_array(matrix, rounds)


def _random_strategy(rng, cells, rounds):
    order = tuple(int(j) for j in rng.permutation(cells))
    cuts = np.sort(rng.choice(np.arange(1, cells), size=rounds - 1, replace=False))
    bounds = [0, *(int(cut) for cut in cuts), cells]
    sizes = tuple(bounds[i + 1] - bounds[i] for i in range(rounds))
    return Strategy.from_order_and_sizes(order, sizes)


class TestExpectedPagingBatch:
    def test_matches_scalar_on_random_instances(self):
        rng = np.random.default_rng(7)
        for _ in range(10):
            devices = int(rng.integers(1, 4))
            cells = int(rng.integers(4, 12))
            rounds = int(rng.integers(2, min(5, cells)))
            instance = _random_instance(rng, devices, cells, rounds)
            strategies = [_random_strategy(rng, cells, rounds) for _ in range(5)]
            batch = expected_paging_batch(instance, strategies)
            for value, strategy in zip(batch, strategies):
                assert float(value) == pytest.approx(
                    expected_paging_float(instance, strategy)
                )

    def test_bitwise_identical_to_scalar_float_path(self):
        # Stronger than approx: the batch kernel runs the exact same
        # gather/cumsum/telescoping pipeline as expected_paging_float, so on
        # float instances the results are identical down to the last bit.
        rng = np.random.default_rng(11)
        instance = _random_instance(rng, 3, 10, 4)
        strategies = [
            _random_strategy(rng, 10, 4),
            _random_strategy(rng, 10, 2),
            Strategy.single_round(10),
            Strategy([[0, 3], [1, 2, 4], [5, 6, 7, 8, 9]]),
        ]
        batch = expected_paging_batch(instance, strategies)
        for value, strategy in zip(batch, strategies):
            scalar = expected_paging_float(instance, strategy)
            assert float(value).hex() == scalar.hex()

    def test_mixed_round_counts_in_one_stack(self):
        rng = np.random.default_rng(13)
        instance = _random_instance(rng, 2, 8, 4)
        strategies = [
            Strategy.single_round(8),
            _random_strategy(rng, 8, 2),
            _random_strategy(rng, 8, 4),
        ]
        batch = expected_paging_batch(instance, strategies)
        assert batch.shape == (3,)
        for value, strategy in zip(batch, strategies):
            assert float(value) == pytest.approx(
                expected_paging_float(instance, strategy)
            )

    def test_empty_stack(self):
        rng = np.random.default_rng(17)
        instance = _random_instance(rng, 2, 6, 3)
        assert expected_paging_batch(instance, []).shape == (0,)

    def test_exact_instance_matches_fraction_oracle(self):
        from fractions import Fraction

        instance = PagingInstance(
            [
                [Fraction(1, 2), Fraction(1, 3), Fraction(1, 6)],
                [Fraction(1, 4), Fraction(1, 4), Fraction(1, 2)],
            ],
            2,
        )
        strategy = Strategy([[0], [1, 2]])
        batch = expected_paging_batch(instance, [strategy])
        assert float(batch[0]) == pytest.approx(
            expected_paging_float(instance, strategy)
        )

    def test_incompatible_strategy_raises(self):
        rng = np.random.default_rng(19)
        instance = _random_instance(rng, 2, 6, 3)
        with pytest.raises(Exception):
            expected_paging_batch(instance, [Strategy.single_round(7)])


class TestPrefixStopsFloat:
    def test_last_stop_is_one(self):
        rng = np.random.default_rng(23)
        instance = _random_instance(rng, 3, 9, 3)
        strategy = _random_strategy(rng, 9, 3)
        stops = prefix_stops_float(instance, strategy)
        assert stops.shape == (3,)
        assert stops[-1] == pytest.approx(1.0)
        assert np.all(np.diff(stops) >= -1e-12)


class TestSampleLocationsBatch:
    def test_shape_and_range(self):
        rng = np.random.default_rng(29)
        instance = _random_instance(rng, 3, 7, 3)
        locations = sample_locations_batch(instance, 50, rng)
        assert locations.shape == (3, 50)
        assert locations.min() >= 0
        assert locations.max() < 7

    def test_skips_zero_probability_cells(self):
        instance = PagingInstance.from_array(
            np.array([[0.0, 1.0, 0.0]]), 2, allow_zero=True
        )
        rng = np.random.default_rng(31)
        locations = sample_locations_batch(instance, 200, rng)
        assert set(np.unique(locations)) == {1}

    def test_empirical_frequencies(self):
        instance = PagingInstance.from_array(np.array([[0.7, 0.2, 0.1]]), 2)
        rng = np.random.default_rng(37)
        locations = sample_locations_batch(instance, 20_000, rng)
        freqs = np.bincount(locations[0], minlength=3) / 20_000
        assert freqs[0] == pytest.approx(0.7, abs=0.02)
        assert freqs[1] == pytest.approx(0.2, abs=0.02)
        assert freqs[2] == pytest.approx(0.1, abs=0.02)

    def test_rejects_nonpositive_trials(self):
        rng = np.random.default_rng(41)
        instance = _random_instance(rng, 2, 5, 2)
        with pytest.raises(ValueError):
            sample_locations_batch(instance, 0, rng)


class TestSimulatePagingBatch:
    def test_columnwise_matches_scalar_simulate(self):
        rng = np.random.default_rng(43)
        instance = _random_instance(rng, 3, 8, 3)
        strategy = _random_strategy(rng, 8, 3)
        locations = sample_locations_batch(instance, 60, rng)
        cells_paged, rounds_used = simulate_paging_batch(
            instance, strategy, locations
        )
        for k in range(60):
            scalar_cells, scalar_rounds = simulate_paging(
                instance, strategy, tuple(int(cell) for cell in locations[:, k])
            )
            assert int(cells_paged[k]) == scalar_cells
            assert int(rounds_used[k]) == scalar_rounds

    def test_rejects_bad_shape(self):
        rng = np.random.default_rng(47)
        instance = _random_instance(rng, 2, 6, 2)
        strategy = Strategy.single_round(6)
        with pytest.raises(ValueError):
            simulate_paging_batch(instance, strategy, np.zeros((3, 5), dtype=np.intp))

    def test_rejects_out_of_range_cells(self):
        rng = np.random.default_rng(53)
        instance = _random_instance(rng, 2, 6, 2)
        strategy = Strategy.single_round(6)
        bad = np.full((2, 4), 6, dtype=np.intp)
        with pytest.raises(ValueError):
            simulate_paging_batch(instance, strategy, bad)


class TestMonteCarloFast:
    def test_agrees_with_loop_reference(self):
        rng = np.random.default_rng(59)
        instance = _random_instance(rng, 2, 10, 3)
        strategy = _random_strategy(rng, 10, 3)
        reference = expected_paging_monte_carlo(
            instance, strategy, trials=4000, rng=np.random.default_rng(61)
        )
        fast = expected_paging_monte_carlo_fast(
            instance, strategy, trials=4000, rng=np.random.default_rng(61)
        )
        closed = expected_paging_float(instance, strategy)
        assert fast == pytest.approx(closed, abs=0.35)
        assert fast == pytest.approx(reference, abs=0.5)

    def test_seeded_reproducibility(self):
        rng = np.random.default_rng(67)
        instance = _random_instance(rng, 2, 8, 3)
        strategy = _random_strategy(rng, 8, 3)
        first = expected_paging_monte_carlo_fast(
            instance, strategy, trials=500, rng=np.random.default_rng(71)
        )
        second = expected_paging_monte_carlo_fast(
            instance, strategy, trials=500, rng=np.random.default_rng(71)
        )
        assert first == pytest.approx(second, rel=0, abs=0)

    def test_rejects_nonpositive_trials(self):
        rng = np.random.default_rng(73)
        instance = _random_instance(rng, 2, 5, 2)
        strategy = Strategy.single_round(5)
        with pytest.raises(ValueError):
            expected_paging_monte_carlo_fast(
                instance, strategy, trials=0, rng=np.random.default_rng(79)
            )
