"""Reproduction tests for the Section 4.3 lower-bound instance."""

from fractions import Fraction

import pytest

from repro.core import (
    HEURISTIC_VALUE,
    OPTIMAL_VALUE,
    RATIO,
    conference_call_heuristic,
    expected_paging,
    lower_bound_instance,
    optimal_strategy,
    optimal_strategy_of_instance,
    perturbed_instance,
)
from repro.core.lower_bound import heuristic_first_round, optimal_first_round


class TestExactInstance:
    def test_constants(self):
        assert OPTIMAL_VALUE == Fraction(317, 49)
        assert HEURISTIC_VALUE == Fraction(320, 49)
        assert RATIO == Fraction(320, 317)

    def test_instance_shape(self):
        instance = lower_bound_instance()
        assert instance.num_devices == 2
        assert instance.num_cells == 8
        assert instance.max_rounds == 2
        assert instance.is_exact

    def test_row_sums(self):
        instance = lower_bound_instance()
        assert sum(instance.row(0)) == 1
        assert sum(instance.row(1)) == 1

    def test_paper_probabilities(self):
        instance = lower_bound_instance()
        assert instance.probability(0, 0) == Fraction(2, 7)
        assert instance.probability(1, 0) == 0
        assert instance.probability(0, 6) == 0
        assert instance.probability(0, 7) == 0
        assert instance.probability(1, 5) == Fraction(1, 7)

    def test_optimal_value_and_strategy(self):
        instance = lower_bound_instance()
        result = optimal_strategy(instance)
        assert result.expected_paging == OPTIMAL_VALUE
        assert result.strategy.group(0) == frozenset(optimal_first_round())

    def test_named_optimal_strategy_evaluates_correctly(self):
        instance = lower_bound_instance()
        assert expected_paging(instance, optimal_strategy_of_instance()) == OPTIMAL_VALUE

    def test_heuristic_value_and_strategy(self):
        instance = lower_bound_instance()
        result = conference_call_heuristic(instance)
        assert result.expected_paging == HEURISTIC_VALUE
        assert result.strategy.group(0) == frozenset(heuristic_first_round())

    def test_ratio(self):
        instance = lower_bound_instance()
        heuristic = conference_call_heuristic(instance)
        optimum = optimal_strategy(instance)
        assert heuristic.expected_paging / optimum.expected_paging == RATIO


class TestPerturbedInstance:
    def test_no_tie_in_weights(self):
        instance = perturbed_instance()
        weights = instance.cell_weights()
        assert weights[0] > max(weights[1:])

    def test_heuristic_still_misled(self):
        instance = perturbed_instance(Fraction(1, 10_000))
        result = conference_call_heuristic(instance)
        assert result.strategy.group(0) == frozenset(heuristic_first_round())

    def test_optimal_unchanged(self):
        instance = perturbed_instance(Fraction(1, 10_000))
        result = optimal_strategy(instance)
        assert result.expected_paging == OPTIMAL_VALUE

    def test_ratio_approaches_paper_bound(self):
        instance = perturbed_instance(Fraction(1, 100_000))
        heuristic = conference_call_heuristic(instance)
        optimum = optimal_strategy(instance)
        ratio = Fraction(heuristic.expected_paging) / Fraction(optimum.expected_paging)
        assert abs(float(ratio) - float(RATIO)) < 1e-4

    def test_rejects_bad_epsilon(self):
        with pytest.raises(ValueError):
            perturbed_instance(Fraction(0))
        with pytest.raises(ValueError):
            perturbed_instance(Fraction(1, 2))
