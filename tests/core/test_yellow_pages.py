"""Unit tests for the Yellow Pages problem (find 1 of m, Section 5)."""

import itertools
from fractions import Fraction

import pytest

from repro.core import (
    Strategy,
    by_miss_probability,
    expected_paging_yellow,
    optimize_yellow_over_order,
    yellow_pages_greedy,
    yellow_pages_m_approximation,
    yellow_pages_weight_order,
)
from repro.core.yellow_pages import prefix_stop_probabilities
from tests.conftest import random_exact_instance, random_instance


def yellow_monte_carlo(instance, strategy, trials, rng):
    """Simulate the find-ANY stopping rule directly."""
    total = 0
    for _ in range(trials):
        locations = instance.sample_locations(rng)
        paged = 0
        for group in strategy.groups:
            paged += len(group)
            if any(cell in group for cell in locations):
                break
        total += paged
    return total / trials


def exhaustive_yellow_optimum(instance, d):
    """Minimal yellow-pages EP over every strategy (tiny instances)."""
    best = None
    for assignment in itertools.product(range(d), repeat=instance.num_cells):
        if len(set(assignment)) != d:
            continue
        strategy = Strategy.from_assignment(assignment)
        value = expected_paging_yellow(instance, strategy)
        if best is None or value < best:
            best = value
    return best


class TestStopProbabilities:
    def test_manual_two_devices(self):
        from repro.core import PagingInstance

        instance = PagingInstance(
            [
                [Fraction(3, 4), Fraction(1, 4)],
                [Fraction(1, 2), Fraction(1, 2)],
            ],
            max_rounds=2,
        )
        finds = prefix_stop_probabilities(instance, (0, 1))
        assert finds[0] == 0
        # P[any in cell 0] = 1 - (1/4)(1/2) = 7/8.
        assert finds[1] == Fraction(7, 8)
        assert finds[2] == 1

    def test_monotone(self, rng):
        instance = random_instance(rng, num_devices=3, num_cells=6)
        finds = prefix_stop_probabilities(instance, tuple(range(6)))
        assert all(finds[i] <= finds[i + 1] + 1e-12 for i in range(6))


class TestExpectedPaging:
    def test_matches_monte_carlo(self, rng):
        instance = random_instance(rng, num_devices=3, num_cells=6, max_rounds=3)
        result = yellow_pages_greedy(instance)
        estimate = yellow_monte_carlo(instance, result.strategy, 20_000, rng)
        assert estimate == pytest.approx(float(result.expected_paging), abs=0.08)

    def test_value_matches_strategy_evaluation(self, rng):
        instance = random_instance(rng, num_devices=2, num_cells=7, max_rounds=3)
        result = yellow_pages_greedy(instance)
        assert float(result.expected_paging) == pytest.approx(
            float(expected_paging_yellow(instance, result.strategy))
        )

    def test_cheaper_than_conference_call(self, rng):
        """Finding one device can never cost more than finding all."""
        from repro.core import conference_call_heuristic

        for _ in range(6):
            instance = random_instance(rng, num_devices=3, num_cells=7, max_rounds=3)
            yellow = yellow_pages_greedy(instance)
            conference = conference_call_heuristic(instance)
            assert float(yellow.expected_paging) <= float(
                conference.expected_paging
            ) + 1e-9


class TestOrderOptimization:
    def test_cut_dp_optimal_over_order(self, rng):
        """The DP must beat/match every contiguous cut of the same order."""
        instance = random_instance(rng, num_devices=2, num_cells=6, max_rounds=2)
        order = by_miss_probability(instance)
        result = optimize_yellow_over_order(instance, order)
        for split in range(1, 6):
            strategy = Strategy.from_order_and_sizes(order, (split, 6 - split))
            assert float(result.expected_paging) <= float(
                expected_paging_yellow(instance, strategy)
            ) + 1e-12

    def test_exact_arithmetic(self, rng):
        instance = random_exact_instance(rng, num_devices=2, num_cells=5, max_rounds=2)
        result = yellow_pages_greedy(instance)
        assert isinstance(result.expected_paging, Fraction)


class TestMApproximation:
    def test_within_m_of_exhaustive_optimum(self, rng):
        for _ in range(5):
            instance = random_instance(rng, num_devices=2, num_cells=6, max_rounds=2)
            approx = yellow_pages_m_approximation(instance)
            optimum = exhaustive_yellow_optimum(instance, 2)
            assert float(approx.expected_paging) <= 2 * float(optimum) + 1e-9

    def test_single_device_degenerates_to_classical(self, rng):
        from repro.core import optimal_single_user

        instance = random_instance(rng, num_devices=1, num_cells=6, max_rounds=3)
        approx = yellow_pages_m_approximation(instance)
        classical = optimal_single_user(instance)
        assert float(approx.expected_paging) == pytest.approx(
            float(classical.expected_paging)
        )


class TestWeightOrderVariant:
    def test_runs_and_is_valid(self, rng):
        instance = random_instance(rng, num_devices=3, num_cells=6, max_rounds=2)
        result = yellow_pages_weight_order(instance)
        assert result.strategy.num_cells == 6
        assert 1.0 <= float(result.expected_paging) <= 6.0
