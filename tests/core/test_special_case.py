"""Unit tests for the m = 2, d = 2 special case (Section 4.1)."""

import pytest

from repro.core import (
    FOUR_THIRDS,
    conference_call_heuristic,
    lower_bound_instance,
    optimal_strategy,
    two_device_two_round_heuristic,
)
from repro.core.instance import PagingInstance
from repro.errors import InvalidInstanceError
from tests.conftest import random_exact_instance, random_instance


class TestPreconditions:
    def test_rejects_wrong_device_count(self, rng):
        instance = random_instance(rng, num_devices=3, num_cells=6, max_rounds=2)
        with pytest.raises(InvalidInstanceError, match="m = 2"):
            two_device_two_round_heuristic(instance)

    def test_rejects_wrong_round_count(self, rng):
        instance = random_instance(rng, num_devices=2, num_cells=6, max_rounds=3)
        with pytest.raises(InvalidInstanceError, match="d = 2"):
            two_device_two_round_heuristic(instance)

    def test_rejects_single_cell(self):
        instance = PagingInstance([[1.0], [1.0]], max_rounds=1)
        instance = instance.with_max_rounds(1)
        with pytest.raises(InvalidInstanceError):
            two_device_two_round_heuristic(
                PagingInstance([[1.0], [1.0]], max_rounds=1)
            )


class TestAgreementWithGeneralHeuristic:
    def test_same_value_as_fig1_dp(self, rng):
        """The O(c) scan and the general DP optimize the same family."""
        for _ in range(10):
            instance = random_instance(rng, num_devices=2, num_cells=8, max_rounds=2)
            scan = two_device_two_round_heuristic(instance)
            general = conference_call_heuristic(instance)
            assert float(scan.expected_paging) == pytest.approx(
                float(general.expected_paging)
            )

    def test_exact_agreement(self, rng):
        for _ in range(5):
            instance = random_exact_instance(rng, num_cells=6, max_rounds=2)
            scan = two_device_two_round_heuristic(instance)
            general = conference_call_heuristic(instance)
            assert scan.expected_paging == general.expected_paging


class TestGuarantee:
    def test_within_four_thirds(self, rng):
        for _ in range(12):
            instance = random_instance(rng, num_devices=2, num_cells=7, max_rounds=2)
            scan = two_device_two_round_heuristic(instance)
            optimum = optimal_strategy(instance)
            ratio = float(scan.expected_paging) / float(optimum.expected_paging)
            assert ratio <= FOUR_THIRDS + 1e-9

    def test_gadget_ratio(self):
        instance = lower_bound_instance()
        scan = two_device_two_round_heuristic(instance)
        optimum = optimal_strategy(instance)
        ratio = float(scan.expected_paging) / float(optimum.expected_paging)
        assert ratio == pytest.approx(320 / 317)


class TestStructure:
    def test_split_partitions_cells(self, rng):
        instance = random_instance(rng, num_devices=2, num_cells=9, max_rounds=2)
        result = two_device_two_round_heuristic(instance)
        assert result.strategy.length == 2
        assert result.strategy.num_cells == 9
        assert result.first_round_size == len(result.strategy.group(0))

    def test_value_matches_strategy(self, rng):
        from repro.core import expected_paging_float

        instance = random_instance(rng, num_devices=2, num_cells=7, max_rounds=2)
        result = two_device_two_round_heuristic(instance)
        assert float(result.expected_paging) == pytest.approx(
            expected_paging_float(instance, result.strategy)
        )
