"""Fidelity tests: the verbatim Fig. 1 pseudocode vs the production code."""

import pytest

from repro.core import conference_call_heuristic, expected_paging_float
from repro.core.fig1_reference import fig1_approximation, fig1_heuristic
from repro.errors import InvalidInstanceError
from tests.conftest import random_instance


class TestTransliteration:
    def test_matches_production_heuristic(self, rng):
        """Same group sizes and value on a batch of random instances."""
        for _ in range(12):
            instance = random_instance(rng, num_devices=3, num_cells=9, max_rounds=4)
            strategy, value = fig1_heuristic(instance)
            production = conference_call_heuristic(instance)
            assert strategy.group_sizes() == production.group_sizes
            assert value == pytest.approx(float(production.expected_paging))

    def test_matches_on_the_lower_bound_gadget(self):
        from repro.core import lower_bound_instance

        instance = lower_bound_instance()
        strategy, value = fig1_heuristic(instance)
        assert value == pytest.approx(320 / 49)
        assert strategy.group(0) == frozenset({0, 1, 2, 3, 4})

    def test_single_round(self, rng):
        instance = random_instance(rng, num_devices=2, num_cells=5, max_rounds=1)
        sizes = fig1_approximation(5, 2, 1, instance.as_array())
        assert sizes == (5,)

    def test_d_equals_c(self, rng):
        instance = random_instance(rng, num_devices=2, num_cells=5, max_rounds=5)
        strategy, value = fig1_heuristic(instance)
        assert strategy.group_sizes() == (1, 1, 1, 1, 1)
        assert value == pytest.approx(
            float(conference_call_heuristic(instance).expected_paging)
        )

    def test_sizes_partition_cells(self, rng):
        instance = random_instance(rng, num_devices=2, num_cells=8, max_rounds=3)
        sizes = fig1_approximation(8, 2, 3, instance.as_array())
        assert sum(sizes) == 8
        assert len(sizes) == 3
        assert all(size >= 1 for size in sizes)

    def test_value_equals_reported_ep(self, rng):
        instance = random_instance(rng, num_devices=2, num_cells=7, max_rounds=3)
        strategy, value = fig1_heuristic(instance)
        assert value == pytest.approx(expected_paging_float(instance, strategy))

    def test_rejects_bad_parameters(self, rng):
        instance = random_instance(rng, num_devices=2, num_cells=5)
        with pytest.raises(InvalidInstanceError):
            fig1_approximation(5, 2, 0, instance.as_array())
        with pytest.raises(InvalidInstanceError):
            fig1_approximation(5, 2, 6, instance.as_array())
        with pytest.raises(InvalidInstanceError):
            fig1_approximation(4, 2, 2, instance.as_array())
