"""Unit tests for cell orderings."""

from fractions import Fraction

import pytest

from repro.core import (
    PagingInstance,
    by_device_probability,
    by_expected_devices,
    by_max_probability,
    by_miss_probability,
    identity,
    random_order,
    validate_order,
)


@pytest.fixture
def skewed_instance():
    rows = [
        [Fraction(1, 10), Fraction(6, 10), Fraction(3, 10)],
        [Fraction(5, 10), Fraction(1, 10), Fraction(4, 10)],
    ]
    return PagingInstance(rows, max_rounds=2)


class TestWeightOrder:
    def test_sorts_by_total_weight(self, skewed_instance):
        # Weights: cell0 = 0.6, cell1 = 0.7, cell2 = 0.7 -> ties by index.
        assert by_expected_devices(skewed_instance) == (1, 2, 0)

    def test_tie_break_by_index(self):
        instance = PagingInstance.uniform(2, 5, 2, exact=True)
        assert by_expected_devices(instance) == (0, 1, 2, 3, 4)

    def test_lower_bound_instance_order(self):
        """The Section 4.3 gadget's tie-break: cell 0 leads."""
        from repro.core import lower_bound_instance

        order = by_expected_devices(lower_bound_instance())
        assert order == (0, 1, 2, 3, 4, 5, 6, 7)


class TestDeviceOrder:
    def test_by_device_probability(self, skewed_instance):
        assert by_device_probability(skewed_instance, 0) == (1, 2, 0)
        assert by_device_probability(skewed_instance, 1) == (0, 2, 1)


class TestOtherOrders:
    def test_by_max_probability(self, skewed_instance):
        # Max per cell: 0.5, 0.6, 0.4.
        assert by_max_probability(skewed_instance) == (1, 0, 2)

    def test_by_miss_probability(self, skewed_instance):
        # Miss products: c0 = .9*.5 = .45, c1 = .4*.9 = .36, c2 = .7*.6 = .42.
        assert by_miss_probability(skewed_instance) == (1, 2, 0)

    def test_identity(self, skewed_instance):
        assert identity(skewed_instance) == (0, 1, 2)

    def test_random_order_is_permutation(self, skewed_instance, rng):
        order = random_order(skewed_instance, rng)
        assert sorted(order) == [0, 1, 2]


class TestValidation:
    def test_accepts_valid(self):
        assert validate_order([2, 0, 1], 3) == (2, 0, 1)

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError, match="permutation"):
            validate_order([0, 0, 1], 3)

    def test_rejects_wrong_length(self):
        with pytest.raises(ValueError, match="permutation"):
            validate_order([0, 1], 3)
