"""Unit tests for the exact solvers."""

import pytest

from repro.core import (
    enumerate_strategies,
    expected_paging,
    optimal_strategy,
    optimal_strategy_bruteforce,
)
from repro.core.exact import MAX_EXACT_CELLS, optimal_value_by_round_budget
from repro.core.instance import PagingInstance
from repro.errors import SolverLimitError
from tests.conftest import random_exact_instance, random_instance


class TestSubsetDP:
    def test_matches_bruteforce_float(self, rng):
        for _ in range(6):
            instance = random_instance(rng, num_devices=2, num_cells=6, max_rounds=2)
            dp = optimal_strategy(instance)
            brute = optimal_strategy_bruteforce(instance)
            assert float(dp.expected_paging) == pytest.approx(
                float(brute.expected_paging)
            )

    def test_matches_bruteforce_exact(self, rng):
        for _ in range(4):
            instance = random_exact_instance(rng, num_cells=5, max_rounds=3)
            dp = optimal_strategy(instance)
            brute = optimal_strategy_bruteforce(instance)
            assert dp.expected_paging == brute.expected_paging

    def test_matches_bruteforce_three_devices(self, rng):
        instance = random_instance(rng, num_devices=3, num_cells=6, max_rounds=3)
        dp = optimal_strategy(instance)
        brute = optimal_strategy_bruteforce(instance)
        assert float(dp.expected_paging) == pytest.approx(float(brute.expected_paging))

    def test_value_matches_strategy(self, small_instance):
        result = optimal_strategy(small_instance)
        assert result.expected_paging == expected_paging(
            small_instance, result.strategy
        )

    def test_strategy_has_exactly_d_groups(self, small_instance):
        result = optimal_strategy(small_instance)
        assert result.strategy.length == small_instance.max_rounds

    def test_cell_limit_enforced(self):
        instance = PagingInstance.uniform(1, MAX_EXACT_CELLS + 1, 2)
        with pytest.raises(SolverLimitError, match="limited"):
            optimal_strategy(instance)

    def test_round_override(self, small_instance):
        result = optimal_strategy(small_instance, max_rounds=2)
        assert result.strategy.length == 2

    def test_bandwidth_cap(self, rng):
        instance = random_instance(rng, num_cells=6, max_rounds=3)
        result = optimal_strategy(instance, max_group_size=2)
        assert max(result.strategy.group_sizes()) <= 2

    def test_uniform_single_device_balanced_groups(self):
        """Uniform m=1, d=2: the optimal split is half/half (EP = 3c/4)."""
        instance = PagingInstance.uniform(1, 8, 2, exact=True)
        result = optimal_strategy(instance)
        assert sorted(result.strategy.group_sizes()) == [4, 4]
        assert float(result.expected_paging) == pytest.approx(6.0)


class TestBruteForce:
    def test_enumerates_all_surjections(self):
        strategies = list(enumerate_strategies(3, 2))
        assert len(strategies) == 6  # 2^3 - 2 non-surjective

    def test_enumeration_limit(self):
        instance = PagingInstance.uniform(1, 12, 4)
        with pytest.raises(SolverLimitError, match="enumeration"):
            optimal_strategy_bruteforce(instance, enumeration_limit=100)


class TestRoundBudgetSweep:
    def test_monotone_in_delay(self, rng):
        instance = random_instance(rng, num_cells=6, max_rounds=6)
        values = optimal_value_by_round_budget(instance, (1, 6))
        assert float(values[0]) == pytest.approx(instance.num_cells)
        for i in range(len(values) - 1):
            assert float(values[i + 1]) <= float(values[i]) + 1e-12

    def test_strictly_decreasing_with_positive_probabilities(self, rng):
        instance = random_exact_instance(rng, num_cells=5, max_rounds=5)
        values = optimal_value_by_round_budget(instance, (1, 5))
        for i in range(len(values) - 1):
            assert values[i + 1] < values[i], (
                "Section 2: with positive probabilities a longer strategy "
                "achieves strictly lower expected paging"
            )


class TestPopcountTable:
    def test_matches_bit_count(self):
        from repro.core.exact import _popcount_table

        table = _popcount_table(64)
        assert table == [bin(mask).count("1") for mask in range(64)]

    def test_incremental_recurrence(self):
        from repro.core.exact import _popcount_table

        table = _popcount_table(256)
        for mask in range(1, 256):
            assert table[mask] == table[mask >> 1] + (mask & 1)


class TestFindTableCache:
    def test_repeated_solves_hit_the_cache(self, rng):
        from repro.core.exact import _mask_find_probabilities

        _mask_find_probabilities.cache_clear()
        instance = random_instance(rng, num_devices=2, num_cells=5, max_rounds=3)
        optimal_value_by_round_budget(instance, (1, 3))
        info = _mask_find_probabilities.cache_info()
        assert info.misses == 1
        assert info.hits >= 2

    def test_cache_keyed_by_instance(self, rng):
        from repro.core.exact import _mask_find_probabilities

        _mask_find_probabilities.cache_clear()
        first = random_instance(rng, num_devices=2, num_cells=5, max_rounds=2)
        second = random_instance(rng, num_devices=2, num_cells=5, max_rounds=2)
        optimal_strategy(first)
        optimal_strategy(second)
        assert _mask_find_probabilities.cache_info().misses == 2
