"""Unit tests for the imperfect-detection model (Section 5)."""

import pytest

from repro.core import (
    CollisionDetection,
    ConstantDetection,
    Strategy,
    conference_call_heuristic,
    expected_paging_float,
    expected_paging_imperfect_monte_carlo,
    expected_paging_imperfect_single,
    imperfect_ordering_invariance,
    optimal_single_user,
    simulate_imperfect_search,
)
from repro.errors import InvalidInstanceError, SimulationError
from tests.conftest import random_instance


class TestDetectionModels:
    def test_constant_detection(self):
        model = ConstantDetection(0.8)
        # the model returns the stored literal unchanged, so equality is exact
        assert model.detection_probability(1) == 0.8  # replint: disable=RPL001
        assert model.detection_probability(5) == 0.8  # replint: disable=RPL001

    def test_constant_validation(self):
        with pytest.raises(InvalidInstanceError):
            ConstantDetection(0.0)
        with pytest.raises(InvalidInstanceError):
            ConstantDetection(1.5)

    def test_collision_decay(self):
        model = CollisionDetection(0.9, collision_factor=0.5)
        assert model.detection_probability(1) == pytest.approx(0.9)
        assert model.detection_probability(2) == pytest.approx(0.45)
        assert model.detection_probability(3) == pytest.approx(0.225)

    def test_collision_validation(self):
        with pytest.raises(InvalidInstanceError):
            CollisionDetection(0.9, collision_factor=0.0)
        with pytest.raises(InvalidInstanceError):
            CollisionDetection(0.9).detection_probability(0)


class TestSimulation:
    def test_perfect_detection_matches_plain_search(self, rng):
        instance = random_instance(rng, num_devices=2, num_cells=6, max_rounds=3)
        plan = conference_call_heuristic(instance)
        locations = instance.sample_locations(rng)
        outcome = simulate_imperfect_search(
            instance, plan.strategy, locations, ConstantDetection(1.0), rng
        )
        from repro.core import simulate_paging

        paged, rounds = simulate_paging(instance, plan.strategy, locations)
        assert outcome.cells_paged == paged
        assert outcome.rounds_used == rounds
        assert outcome.sweeps_used == 1

    def test_low_detection_needs_more_sweeps(self, rng):
        instance = random_instance(rng, num_devices=2, num_cells=6, max_rounds=2)
        plan = conference_call_heuristic(instance)
        sweeps = []
        for _ in range(50):
            locations = instance.sample_locations(rng)
            outcome = simulate_imperfect_search(
                instance, plan.strategy, locations, ConstantDetection(0.3), rng
            )
            sweeps.append(outcome.sweeps_used)
        assert max(sweeps) > 1

    def test_sweep_cap_enforced(self, rng):
        instance = random_instance(rng, num_devices=1, num_cells=4, max_rounds=2)
        plan = conference_call_heuristic(instance)
        with pytest.raises(SimulationError, match="terminate"):
            simulate_imperfect_search(
                instance,
                plan.strategy,
                instance.sample_locations(rng),
                ConstantDetection(1e-6),
                rng,
                max_sweeps=3,
            )

    def test_rejects_wrong_locations(self, rng):
        instance = random_instance(rng, num_devices=2, num_cells=4, max_rounds=2)
        plan = conference_call_heuristic(instance)
        with pytest.raises(InvalidInstanceError):
            simulate_imperfect_search(
                instance, plan.strategy, (0,), ConstantDetection(0.9), rng
            )


class TestClosedForm:
    def test_matches_monte_carlo(self, rng):
        instance = random_instance(rng, num_devices=1, num_cells=6, max_rounds=3)
        plan = optimal_single_user(instance)
        for q in (1.0, 0.8, 0.5):
            closed = expected_paging_imperfect_single(instance, plan.strategy, q)
            estimate = expected_paging_imperfect_monte_carlo(
                instance,
                plan.strategy,
                ConstantDetection(q),
                trials=15_000,
                rng=rng,
            )
            assert estimate == pytest.approx(closed, rel=0.05)

    def test_q_one_reduces_to_perfect_ep(self, rng):
        instance = random_instance(rng, num_devices=1, num_cells=6, max_rounds=3)
        plan = optimal_single_user(instance)
        closed = expected_paging_imperfect_single(instance, plan.strategy, 1.0)
        assert closed == pytest.approx(
            expected_paging_float(instance, plan.strategy)
        )

    def test_cost_increases_as_q_drops(self, rng):
        instance = random_instance(rng, num_devices=1, num_cells=6, max_rounds=3)
        plan = optimal_single_user(instance)
        values = [
            expected_paging_imperfect_single(instance, plan.strategy, q)
            for q in (1.0, 0.8, 0.5, 0.2)
        ]
        for i in range(len(values) - 1):
            assert values[i] < values[i + 1]

    def test_rejects_multi_device(self, rng):
        instance = random_instance(rng, num_devices=2, num_cells=4, max_rounds=2)
        with pytest.raises(InvalidInstanceError, match="m = 1"):
            expected_paging_imperfect_single(
                instance, Strategy.single_round(4), 0.9
            )

    def test_ordering_invariance(self, rng):
        """The q term is additive: strategy comparisons are q-independent."""
        instance = random_instance(rng, num_devices=1, num_cells=6, max_rounds=2)
        good = optimal_single_user(instance).strategy
        bad = Strategy.from_order_and_sizes(tuple(range(6)), (3, 3))
        for q in (0.9, 0.5, 0.2):
            _ep_a, _ep_b, invariant = imperfect_ordering_invariance(
                instance, good, bad, q
            )
            assert invariant


class TestCollisionEffects:
    def test_blanket_suffers_most_from_collisions(self, rng):
        """Concentrated paging collides; spreading rounds mitigates it."""
        instance = random_instance(rng, num_devices=3, num_cells=6, max_rounds=3)
        model = CollisionDetection(0.95, collision_factor=0.3)
        blanket = expected_paging_imperfect_monte_carlo(
            instance, Strategy.single_round(6), model, trials=4_000, rng=rng
        )
        staged = expected_paging_imperfect_monte_carlo(
            instance,
            conference_call_heuristic(instance).strategy,
            model,
            trials=4_000,
            rng=rng,
        )
        assert staged < blanket
