"""Unit tests for the Lemma 4.7 dynamic program and the generic cut DP."""

import itertools
from fractions import Fraction

import pytest

from repro.core import (
    Strategy,
    by_expected_devices,
    dp_value_table,
    expected_paging,
    expected_paging_float,
    optimize_cuts,
    optimize_over_order,
)
from repro.errors import InfeasibleError
from tests.conftest import random_exact_instance, random_instance


def compositions(total, parts):
    """All positive integer compositions of `total` into `parts`."""
    for cuts in itertools.combinations(range(1, total), parts - 1):
        bounds = (0,) + cuts + (total,)
        yield tuple(bounds[i + 1] - bounds[i] for i in range(parts))


def brute_force_best_over_order(instance, order, d):
    """Minimal EP over all contiguous strategies of the order."""
    best = None
    for sizes in compositions(instance.num_cells, d):
        strategy = Strategy.from_order_and_sizes(order, sizes)
        value = expected_paging(instance, strategy)
        if best is None or value < best:
            best = value
    return best


class TestLemma47DP:
    def test_matches_brute_force_float(self, rng):
        for _ in range(8):
            instance = random_instance(rng, num_devices=2, num_cells=7, max_rounds=3)
            order = by_expected_devices(instance)
            result = optimize_over_order(instance, order)
            brute = brute_force_best_over_order(instance, order, 3)
            assert float(result.expected_paging) == pytest.approx(float(brute))

    def test_matches_brute_force_exact(self, rng):
        for _ in range(5):
            instance = random_exact_instance(rng, num_cells=6, max_rounds=3)
            order = by_expected_devices(instance)
            result = optimize_over_order(instance, order, max_rounds=3)
            brute = brute_force_best_over_order(instance, order, 3)
            assert result.expected_paging == brute

    def test_reported_value_equals_strategy_ep(self, rng):
        for _ in range(8):
            instance = random_instance(rng, num_devices=3, num_cells=8, max_rounds=4)
            result = optimize_over_order(instance, by_expected_devices(instance))
            assert float(result.expected_paging) == pytest.approx(
                expected_paging_float(instance, result.strategy)
            )

    def test_group_sizes_partition_cells(self, small_instance):
        result = optimize_over_order(
            small_instance, by_expected_devices(small_instance)
        )
        assert sum(result.group_sizes) == small_instance.num_cells
        assert len(result.group_sizes) == small_instance.max_rounds
        assert all(size >= 1 for size in result.group_sizes)

    def test_d_equals_one_pages_everything(self, small_instance):
        result = optimize_over_order(
            small_instance, by_expected_devices(small_instance), max_rounds=1
        )
        assert result.group_sizes == (small_instance.num_cells,)
        assert float(result.expected_paging) == pytest.approx(
            small_instance.num_cells
        )

    def test_d_equals_c_one_cell_per_round_allowed(self, small_instance):
        result = optimize_over_order(
            small_instance,
            by_expected_devices(small_instance),
            max_rounds=small_instance.num_cells,
        )
        assert len(result.group_sizes) == small_instance.num_cells

    def test_rejects_bad_round_count(self, small_instance):
        order = by_expected_devices(small_instance)
        with pytest.raises(InfeasibleError):
            optimize_over_order(small_instance, order, max_rounds=0)
        with pytest.raises(InfeasibleError):
            optimize_over_order(small_instance, order, max_rounds=99)

    def test_rejects_bad_order(self, small_instance):
        with pytest.raises(ValueError, match="permutation"):
            optimize_over_order(small_instance, (0, 0, 1, 2, 3, 4))

    def test_exact_arithmetic_preserved(self, rng):
        instance = random_exact_instance(rng, num_cells=5)
        result = optimize_over_order(instance, by_expected_devices(instance))
        assert isinstance(result.expected_paging, Fraction)


class TestBandwidthCap:
    def test_cap_respected(self, rng):
        instance = random_instance(rng, num_cells=8, max_rounds=4)
        result = optimize_over_order(
            instance, by_expected_devices(instance), max_group_size=3
        )
        assert max(result.group_sizes) <= 3

    def test_infeasible_cap_rejected(self, small_instance):
        with pytest.raises(InfeasibleError, match="cannot page"):
            optimize_over_order(
                small_instance,
                by_expected_devices(small_instance),
                max_rounds=2,
                max_group_size=2,
            )

    def test_tight_cap_forces_equal_groups(self, rng):
        instance = random_instance(rng, num_cells=8, max_rounds=4)
        result = optimize_over_order(
            instance, by_expected_devices(instance), max_group_size=2
        )
        assert result.group_sizes == (2, 2, 2, 2)

    def test_capped_never_beats_uncapped(self, rng):
        instance = random_instance(rng, num_cells=8, max_rounds=3)
        order = by_expected_devices(instance)
        uncapped = optimize_over_order(instance, order)
        capped = optimize_over_order(instance, order, max_group_size=3)
        assert float(capped.expected_paging) >= float(uncapped.expected_paging) - 1e-12


class TestGenericCutDP:
    def test_agrees_with_lemma47_on_conference_rule(self, rng):
        for _ in range(8):
            instance = random_instance(rng, num_devices=2, num_cells=7, max_rounds=3)
            order = by_expected_devices(instance)
            lemma = optimize_over_order(instance, order)
            finds = instance.prefix_find_probabilities(order)
            sizes, value = optimize_cuts(finds, 3)
            assert value == pytest.approx(float(lemma.expected_paging))
            assert sum(sizes) == 7

    def test_exact_mode(self, rng):
        instance = random_exact_instance(rng, num_cells=5, max_rounds=2)
        order = by_expected_devices(instance)
        finds = instance.prefix_find_probabilities(order)
        sizes, value = optimize_cuts(finds, 2)
        assert isinstance(value, Fraction)
        strategy = Strategy.from_order_and_sizes(order, sizes)
        assert value == expected_paging(instance, strategy)

    def test_single_round(self):
        sizes, value = optimize_cuts((0.0, 0.5, 1.0), 1)
        assert sizes == (2,)
        assert value == 2

    def test_cap_respected(self, rng):
        instance = random_instance(rng, num_cells=8, max_rounds=4)
        finds = instance.prefix_find_probabilities(tuple(range(8)))
        sizes, _value = optimize_cuts(finds, 4, max_group_size=2)
        assert sizes == (2, 2, 2, 2)

    def test_rejects_infeasible(self):
        with pytest.raises(InfeasibleError):
            optimize_cuts((0.0, 1.0), 5)
        with pytest.raises(InfeasibleError):
            optimize_cuts((0.0, 0.3, 0.6, 1.0), 2, max_group_size=1)


class TestValueTable:
    def test_base_row_is_identity(self, small_instance):
        table = dp_value_table(small_instance, by_expected_devices(small_instance))
        assert table[0][1:] == tuple(range(1, 7))

    def test_final_entry_matches_optimizer(self, rng):
        instance = random_instance(rng, num_cells=6, max_rounds=3)
        order = by_expected_devices(instance)
        table = dp_value_table(instance, order)
        result = optimize_over_order(instance, order)
        assert float(table[-1][instance.num_cells]) == pytest.approx(
            float(result.expected_paging)
        )

    def test_values_decrease_with_more_rounds(self, rng):
        instance = random_instance(rng, num_cells=6, max_rounds=4)
        table = dp_value_table(instance, by_expected_devices(instance))
        c = instance.num_cells
        for level in range(len(table) - 1):
            assert float(table[level + 1][c]) <= float(table[level][c]) + 1e-12
