"""Unit tests for heterogeneous paging costs."""

import itertools
from fractions import Fraction

import numpy as np
import pytest

from repro.core import (
    Strategy,
    by_density,
    by_expected_devices,
    conference_call_heuristic,
    expected_paging,
    optimal_strategy,
    optimal_weighted_strategy,
    weighted_expected_paging,
    weighted_heuristic,
)
from repro.errors import InfeasibleError, SolverLimitError
from tests.conftest import random_exact_instance, random_instance


def random_costs(rng, num_cells, *, low=0.5, high=3.0):
    return tuple(float(v) for v in rng.uniform(low, high, size=num_cells))


class TestWeightedEP:
    def test_unit_costs_reduce_to_lemma21(self, rng):
        instance = random_instance(rng, num_devices=2, num_cells=6, max_rounds=3)
        strategy = Strategy.from_order_and_sizes(tuple(range(6)), (2, 2, 2))
        weighted = weighted_expected_paging(instance, strategy, [1.0] * 6)
        plain = expected_paging(instance, strategy)
        assert float(weighted) == pytest.approx(float(plain))

    def test_exact_fractions(self, rng):
        instance = random_exact_instance(rng, num_cells=4, max_rounds=2)
        costs = [Fraction(1), Fraction(2), Fraction(1), Fraction(3)]
        strategy = Strategy([[0, 1], [2, 3]])
        value = weighted_expected_paging(instance, strategy, costs)
        assert isinstance(value, Fraction)
        # Manual: total 7 minus round-2 cost (4) times P(all in {0,1}).
        stop = Fraction(1)
        for row in instance.rows:
            stop *= row[0] + row[1]
        assert value == 7 - 4 * stop

    def test_matches_monte_carlo(self, rng):
        instance = random_instance(rng, num_devices=2, num_cells=5, max_rounds=2)
        costs = random_costs(rng, 5)
        strategy = Strategy.from_order_and_sizes(tuple(range(5)), (2, 3))
        closed = float(weighted_expected_paging(instance, strategy, costs))
        total = 0.0
        trials = 20_000
        for _ in range(trials):
            locations = instance.sample_locations(rng)
            remaining = set(locations)
            for group in strategy.groups:
                total += sum(costs[j] for j in group)
                remaining -= group
                if not remaining:
                    break
        assert total / trials == pytest.approx(closed, abs=0.1)

    def test_rejects_bad_costs(self, rng):
        instance = random_instance(rng, num_cells=4, max_rounds=2)
        strategy = Strategy.single_round(4)
        with pytest.raises(InfeasibleError):
            weighted_expected_paging(instance, strategy, [1.0] * 3)
        with pytest.raises(InfeasibleError):
            weighted_expected_paging(instance, strategy, [1.0, 0.0, 1.0, 1.0])


class TestDensityOrder:
    def test_unit_costs_match_weight_order(self, rng):
        instance = random_instance(rng, num_devices=3, num_cells=7)
        assert by_density(instance, [1.0] * 7) == by_expected_devices(instance)

    def test_expensive_cells_sink(self, rng):
        instance = random_instance(rng, num_devices=2, num_cells=5)
        costs = [1.0, 1.0, 1.0, 1.0, 100.0]
        order = by_density(instance, costs)
        assert order[-1] == 4


class TestWeightedHeuristic:
    def test_unit_costs_match_standard_heuristic(self, rng):
        for _ in range(6):
            instance = random_instance(rng, num_devices=2, num_cells=7, max_rounds=3)
            weighted = weighted_heuristic(instance, [1.0] * 7)
            standard = conference_call_heuristic(instance)
            assert float(weighted.expected_cost) == pytest.approx(
                float(standard.expected_paging)
            )

    def test_value_matches_strategy(self, rng):
        instance = random_instance(rng, num_devices=2, num_cells=6, max_rounds=3)
        costs = random_costs(rng, 6)
        result = weighted_heuristic(instance, costs)
        assert float(result.expected_cost) == pytest.approx(
            float(weighted_expected_paging(instance, result.strategy, costs))
        )

    def test_density_order_beats_weight_order_on_skewed_costs(self, rng):
        """With one very expensive likely cell, density ordering wins."""
        wins = 0
        trials = 10
        for _ in range(trials):
            instance = random_instance(rng, num_devices=2, num_cells=6, max_rounds=2)
            weights = [float(w) for w in instance.cell_weights()]
            costs = [1.0] * 6
            costs[int(np.argmax(weights))] = 25.0  # the hot cell is pricey
            density = weighted_heuristic(instance, costs)
            naive_order = by_expected_devices(instance)
            from repro.core.weighted import optimize_cuts_weighted

            finds = instance.prefix_find_probabilities(naive_order)
            prefix_costs = [0.0]
            for cell in naive_order:
                prefix_costs.append(prefix_costs[-1] + costs[cell])
            _sizes, naive_value = optimize_cuts_weighted(finds, prefix_costs, 2)
            if float(density.expected_cost) <= float(naive_value) + 1e-9:
                wins += 1
        assert wins >= trials - 2


class TestWeightedExact:
    def test_unit_costs_match_standard_exact(self, rng):
        instance = random_instance(rng, num_devices=2, num_cells=6, max_rounds=2)
        weighted = optimal_weighted_strategy(instance, [1.0] * 6)
        standard = optimal_strategy(instance)
        assert float(weighted.expected_cost) == pytest.approx(
            float(standard.expected_paging)
        )

    def test_matches_bruteforce(self, rng):
        instance = random_instance(rng, num_devices=2, num_cells=5, max_rounds=2)
        costs = random_costs(rng, 5)
        exact = optimal_weighted_strategy(instance, costs)
        best = None
        for assignment in itertools.product(range(2), repeat=5):
            if len(set(assignment)) != 2:
                continue
            strategy = Strategy.from_assignment(assignment)
            value = float(weighted_expected_paging(instance, strategy, costs))
            if best is None or value < best:
                best = value
        assert float(exact.expected_cost) == pytest.approx(best)

    def test_heuristic_never_beats_exact(self, rng):
        for _ in range(5):
            instance = random_instance(rng, num_devices=2, num_cells=6, max_rounds=3)
            costs = random_costs(rng, 6)
            heuristic = weighted_heuristic(instance, costs)
            exact = optimal_weighted_strategy(instance, costs)
            assert float(heuristic.expected_cost) >= float(exact.expected_cost) - 1e-9

    def test_cell_limit(self, rng):
        from repro.core import PagingInstance

        instance = PagingInstance.uniform(2, 19, 2)
        with pytest.raises(SolverLimitError):
            optimal_weighted_strategy(instance, [1.0] * 19)
