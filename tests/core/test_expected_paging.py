"""Unit tests for repro.core.expected_paging (Lemma 2.1)."""

from fractions import Fraction

import numpy as np
import pytest

from repro.core import (
    PagingInstance,
    Strategy,
    all_found_probability,
    expected_paging,
    expected_paging_by_definition,
    expected_paging_float,
    expected_paging_monte_carlo,
    expected_rounds,
    simulate_paging,
    stop_probabilities,
    stopping_round_distribution,
)
from repro.errors import InvalidStrategyError
from tests.conftest import random_exact_instance, random_instance


class TestClosedForm:
    def test_single_round_pages_everything(self, exact_instance):
        strategy = Strategy.single_round(4)
        assert expected_paging(exact_instance, strategy) == 4

    def test_uniform_two_round_example(self):
        """The paper's Section 1.1 example: uniform, c even, d=2 -> 3c/4."""
        for c in (4, 8, 20):
            instance = PagingInstance.uniform(1, c, 2, exact=True)
            half = Strategy.from_order_and_sizes(tuple(range(c)), (c // 2, c // 2))
            assert expected_paging(instance, half) == Fraction(3 * c, 4)

    def test_manual_two_cell_instance(self):
        instance = PagingInstance(
            [[Fraction(3, 4), Fraction(1, 4)]], max_rounds=2
        )
        strategy = Strategy([[0], [1]])
        # Pages 1 cell w.p. 3/4, 2 cells w.p. 1/4 -> EP = 5/4.
        assert expected_paging(instance, strategy) == Fraction(5, 4)

    def test_two_devices_multiply(self):
        instance = PagingInstance(
            [
                [Fraction(3, 4), Fraction(1, 4)],
                [Fraction(1, 2), Fraction(1, 2)],
            ],
            max_rounds=2,
        )
        strategy = Strategy([[0], [1]])
        # Stops after round 1 iff both in cell 0: 3/8 -> EP = 2 - 1 * 3/8.
        assert expected_paging(instance, strategy) == 2 - Fraction(3, 8)

    def test_lower_bound_instance_values(self):
        from repro.core import lower_bound_instance, optimal_strategy_of_instance

        instance = lower_bound_instance()
        assert expected_paging(instance, optimal_strategy_of_instance()) == Fraction(
            317, 49
        )

    def test_mismatched_strategy_rejected(self, exact_instance):
        with pytest.raises(InvalidStrategyError, match="covers"):
            expected_paging(exact_instance, Strategy.single_round(5))


class TestIdentities:
    def test_telescoped_equals_definition(self, rng):
        """Lemma 2.1's telescoping equals the direct definition."""
        for _ in range(10):
            instance = random_exact_instance(rng, num_devices=3, num_cells=6)
            assignment = rng.integers(0, 3, size=6)
            assignment[:3] = [0, 1, 2]  # make all three rounds non-empty
            strategy = Strategy.from_assignment(list(assignment))
            assert expected_paging(instance, strategy) == expected_paging_by_definition(
                instance, strategy
            )

    def test_stop_probabilities_monotone_ending_at_one(self, exact_instance):
        strategy = Strategy([[0, 1], [2], [3]])
        stops = stop_probabilities(exact_instance, strategy)
        assert stops[-1] == 1
        assert all(stops[i] <= stops[i + 1] for i in range(len(stops) - 1))

    def test_stopping_round_distribution_sums_to_one(self, exact_instance):
        strategy = Strategy([[0, 1], [2, 3]])
        assert sum(stopping_round_distribution(exact_instance, strategy)) == 1

    def test_expected_rounds_bounds(self, exact_instance):
        strategy = Strategy([[0], [1], [2], [3]])
        rounds = expected_rounds(exact_instance, strategy)
        assert 1 <= rounds <= 4

    def test_all_found_probability_full_set_is_one(self, exact_instance):
        assert all_found_probability(exact_instance, frozenset(range(4))) == 1

    def test_ep_bounded_by_first_group_and_c(self, rng):
        for _ in range(10):
            instance = random_instance(rng, num_cells=7)
            sizes = (2, 3, 2)
            strategy = Strategy.from_order_and_sizes(tuple(range(7)), sizes)
            value = expected_paging_float(instance, strategy)
            assert sizes[0] <= value <= 7 + 1e-12


class TestSimulation:
    def test_simulate_paging_counts(self, exact_instance):
        strategy = Strategy([[0, 1], [2], [3]])
        paged, rounds = simulate_paging(exact_instance, strategy, (0, 1))
        assert (paged, rounds) == (2, 1)
        paged, rounds = simulate_paging(exact_instance, strategy, (0, 3))
        assert (paged, rounds) == (4, 3)

    def test_simulate_rejects_wrong_locations(self, exact_instance):
        strategy = Strategy.single_round(4)
        with pytest.raises(InvalidStrategyError):
            simulate_paging(exact_instance, strategy, (0,))

    def test_monte_carlo_matches_closed_form(self, rng):
        instance = random_instance(rng, num_devices=2, num_cells=5)
        strategy = Strategy.from_order_and_sizes(tuple(range(5)), (2, 3))
        closed = expected_paging_float(instance, strategy)
        estimate = expected_paging_monte_carlo(
            instance, strategy, trials=20_000, rng=rng
        )
        assert estimate == pytest.approx(closed, abs=0.08)

    def test_monte_carlo_rejects_zero_trials(self, exact_instance):
        with pytest.raises(ValueError):
            expected_paging_monte_carlo(
                exact_instance,
                Strategy.single_round(4),
                trials=0,
                rng=np.random.default_rng(0),
            )


class TestLongerStrategiesWin:
    def test_splitting_a_group_never_hurts(self, rng):
        """Section 2: refining a strategy weakly lowers expected paging."""
        for _ in range(10):
            instance = random_instance(rng, num_cells=6, max_rounds=3)
            coarse = Strategy.from_order_and_sizes(tuple(range(6)), (4, 2))
            fine = Strategy.from_order_and_sizes(tuple(range(6)), (2, 2, 2))
            assert expected_paging_float(instance, fine) <= expected_paging_float(
                instance, coarse
            ) + 1e-12

    def test_strictly_lower_with_positive_probabilities(self, rng):
        instance = random_instance(rng, num_cells=6, max_rounds=3)
        coarse = Strategy.single_round(6)
        fine = Strategy.from_order_and_sizes(tuple(range(6)), (3, 3))
        assert expected_paging_float(instance, fine) < expected_paging_float(
            instance, coarse
        )


class TestLocationMessageTruncation:
    def test_short_location_tuples_render_fully(self):
        instance = PagingInstance.uniform(2, 3, 2)
        strategy = Strategy([[0], [1, 2]])
        with pytest.raises(InvalidStrategyError, match=r"\(0, 99\)"):
            simulate_paging(instance, strategy, (0, 99))

    def test_huge_location_tuples_are_truncated(self):
        devices = 50
        instance = PagingInstance.uniform(devices, 3, 2)
        strategy = Strategy([[0], [1, 2]])
        locations = tuple([99] * devices)
        with pytest.raises(InvalidStrategyError) as excinfo:
            simulate_paging(instance, strategy, locations)
        message = str(excinfo.value)
        assert f"... {devices} total" in message
        assert len(message) < 200
