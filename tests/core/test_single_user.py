"""Unit tests for the m = 1 classical problem."""

from fractions import Fraction

import pytest

from repro.core import (
    PagingInstance,
    expected_paging_for_sizes,
    optimal_single_user,
    optimal_strategy,
    uniform_expected_paging,
)
from repro.errors import InvalidInstanceError
from tests.conftest import random_instance


class TestOptimality:
    def test_matches_exhaustive_optimum(self, rng):
        for _ in range(10):
            instance = random_instance(rng, num_devices=1, num_cells=7, max_rounds=3)
            sorted_dp = optimal_single_user(instance)
            exhaustive = optimal_strategy(instance)
            assert float(sorted_dp.expected_paging) == pytest.approx(
                float(exhaustive.expected_paging)
            )

    def test_matches_exhaustive_all_delays(self, rng):
        instance = random_instance(rng, num_devices=1, num_cells=6, max_rounds=6)
        for d in range(1, 7):
            sorted_dp = optimal_single_user(instance, max_rounds=d)
            exhaustive = optimal_strategy(instance, max_rounds=d)
            assert float(sorted_dp.expected_paging) == pytest.approx(
                float(exhaustive.expected_paging)
            )

    def test_rejects_multi_device(self, small_instance):
        with pytest.raises(InvalidInstanceError, match="m = 1"):
            optimal_single_user(small_instance)

    def test_pages_high_probability_cells_first(self):
        instance = PagingInstance.single_device(
            [Fraction(1, 10), Fraction(6, 10), Fraction(3, 10)], max_rounds=3
        )
        result = optimal_single_user(instance)
        assert result.order == (1, 2, 0)


class TestUniformClosedForm:
    def test_paper_example(self):
        """Section 1.1: uniform, d = 2 -> EP = 3c/4."""
        assert uniform_expected_paging(8, 2) == 6
        assert uniform_expected_paging(100, 2) == 75

    def test_general_formula(self):
        assert uniform_expected_paging(12, 3) == Fraction(12 * 4, 6)
        assert uniform_expected_paging(12, 12) == Fraction(13, 2)

    def test_d_equals_one(self):
        assert uniform_expected_paging(9, 1) == 9

    def test_matches_dp(self):
        for c, d in ((6, 2), (6, 3), (12, 4)):
            instance = PagingInstance.uniform(1, c, d, exact=True)
            result = optimal_single_user(instance)
            assert result.expected_paging == uniform_expected_paging(c, d)

    def test_rejects_non_dividing(self):
        with pytest.raises(InvalidInstanceError, match="divides"):
            uniform_expected_paging(10, 3)

    def test_rejects_bad_delay(self):
        with pytest.raises(InvalidInstanceError):
            uniform_expected_paging(4, 0)
        with pytest.raises(InvalidInstanceError):
            uniform_expected_paging(4, 5)


class TestSizesHelper:
    def test_manual_value(self):
        probabilities = [Fraction(1, 2), Fraction(1, 4), Fraction(1, 4)]
        # Pages 1 cell w.p. 1/2, else all 3: EP = 3 - 2 * 1/2 = 2.
        assert expected_paging_for_sizes(probabilities, (1, 2)) == 2

    def test_rejects_bad_sizes(self):
        with pytest.raises(InvalidInstanceError, match="partition"):
            expected_paging_for_sizes([Fraction(1)], (2,))
