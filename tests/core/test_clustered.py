"""Unit tests for the clustered-probability scheme (Section 5)."""

from fractions import Fraction

import pytest

from repro.core import (
    PagingInstance,
    cluster_cells,
    clustered_exhaustive,
    optimal_strategy,
)
from repro.core.clustered import count_matrix_space
from repro.distributions import clustered_instance
from repro.errors import SolverLimitError


@pytest.fixture
def two_level_instance():
    """Six cells in two exact clusters of probability columns."""
    high, low = Fraction(1, 4), Fraction(1, 12)
    row = [high, high, high, low, low, low]
    return PagingInstance([row, list(reversed(row))], max_rounds=2)


class TestClustering:
    def test_exact_columns_cluster(self, two_level_instance):
        clusters = cluster_cells(two_level_instance, resolution=0)
        assert len(clusters) == 2
        assert clusters[0] == (0, 1, 2)
        assert clusters[1] == (3, 4, 5)

    def test_float_resolution_clusters(self, rng):
        instance = clustered_instance(2, 8, 2, rng=rng, num_levels=2)
        clusters = cluster_cells(instance)
        assert 1 <= len(clusters) <= 2
        assert sum(len(cluster) for cluster in clusters) == 8

    def test_distinct_columns_stay_apart(self, rng):
        from tests.conftest import random_instance

        instance = random_instance(rng, num_cells=5)
        clusters = cluster_cells(instance)
        assert len(clusters) == 5  # generic columns never coincide


class TestSpaceCounting:
    def test_count_matrix_space(self):
        assert count_matrix_space([3], 2) == 4  # C(4,1)
        assert count_matrix_space([3, 3], 2) == 16
        assert count_matrix_space([2], 3) == 6  # C(4,2)


class TestExhaustiveScheme:
    def test_optimal_on_exact_clusters(self, two_level_instance):
        scheme = clustered_exhaustive(two_level_instance)
        exact = optimal_strategy(two_level_instance)
        assert scheme.expected_paging == exact.expected_paging

    def test_optimal_on_generated_family(self, rng):
        for _ in range(5):
            instance = clustered_instance(2, 7, 3, rng=rng, num_levels=2)
            scheme = clustered_exhaustive(instance)
            exact = optimal_strategy(instance)
            assert float(scheme.expected_paging) == pytest.approx(
                float(exact.expected_paging)
            )

    def test_count_matrix_shape(self, two_level_instance):
        scheme = clustered_exhaustive(two_level_instance)
        assert len(scheme.count_matrix) == len(scheme.clusters)
        for cluster, allocation in zip(scheme.clusters, scheme.count_matrix):
            assert sum(allocation) == len(cluster)

    def test_limit_enforced(self, rng):
        from tests.conftest import random_instance

        instance = random_instance(rng, num_cells=8, max_rounds=4)
        with pytest.raises(SolverLimitError, match="limit"):
            clustered_exhaustive(instance, limit=10)

    def test_round_override(self, two_level_instance):
        scheme = clustered_exhaustive(two_level_instance, max_rounds=3)
        assert scheme.strategy.length == 3


class TestIntervalScheme:
    def test_within_error_bound_of_optimum(self, rng):
        """The §5 scheme: rounded-exact stays within m c^2 w of true optimal."""
        from repro.core import interval_scheme, interval_scheme_error_bound

        for _ in range(5):
            instance = clustered_instance(2, 7, 2, rng=rng, num_levels=2)
            # Jitter the instance slightly so columns are only NEAR-equal.
            jittered = [
                [float(p) + float(e) for p, e in zip(row, rng.uniform(0, 0.004, 7))]
                for row in instance.rows
            ]
            jittered = [[p / sum(row) for p in row] for row in jittered]
            noisy = PagingInstance(jittered, 2, allow_zero=True)
            width = 0.02
            scheme = interval_scheme(noisy, width)
            true_optimum = optimal_strategy(noisy)
            bound = interval_scheme_error_bound(2, 7, width)
            assert float(scheme.expected_paging) <= float(
                true_optimum.expected_paging
            ) + bound

    def test_near_equal_columns_collapse(self, rng):
        from repro.core import interval_scheme

        instance = clustered_instance(2, 8, 2, rng=rng, num_levels=2)
        scheme = interval_scheme(instance, 0.05)
        assert len(scheme.clusters) <= 3

    def test_zero_width_rejected(self, two_level_instance):
        from repro.core import interval_scheme

        with pytest.raises(SolverLimitError):
            interval_scheme(two_level_instance, 0.0)

    def test_coarse_width_rejected(self, rng):
        from repro.core import PagingInstance, interval_scheme

        instance = PagingInstance.uniform(1, 50, 2)
        with pytest.raises(SolverLimitError, match="coarse"):
            interval_scheme(instance, 0.5)  # every 1/50 rounds to zero

    def test_error_bound_formula(self):
        from repro.core import interval_scheme_error_bound

        assert interval_scheme_error_bound(2, 10, 0.01) == pytest.approx(2.0)
