"""Unit tests for JSON serialization."""

import pytest

from repro.core import Strategy
from repro.core.serialization import (
    dumps,
    instance_from_dict,
    instance_to_dict,
    load,
    loads,
    save,
    strategy_from_dict,
    strategy_to_dict,
)
from repro.errors import InvalidInstanceError, InvalidStrategyError


class TestInstanceRoundTrip:
    def test_exact_round_trip_is_lossless(self, exact_instance):
        restored = instance_from_dict(instance_to_dict(exact_instance))
        assert restored == exact_instance
        assert restored.is_exact

    def test_float_round_trip(self, small_instance):
        restored = instance_from_dict(instance_to_dict(small_instance))
        assert restored.num_cells == small_instance.num_cells
        for i in range(small_instance.num_devices):
            for j in range(small_instance.num_cells):
                assert float(restored.probability(i, j)) == pytest.approx(
                    float(small_instance.probability(i, j))
                )

    def test_zero_probabilities_survive(self):
        from repro.core import lower_bound_instance

        instance = lower_bound_instance()
        restored = instance_from_dict(instance_to_dict(instance))
        assert restored == instance

    def test_wrong_kind_rejected(self, exact_instance):
        payload = instance_to_dict(exact_instance)
        payload["kind"] = "something-else"
        with pytest.raises(InvalidInstanceError, match="kind"):
            instance_from_dict(payload)


class TestStrategyRoundTrip:
    def test_round_trip(self):
        strategy = Strategy([[2, 0], [1], [3, 4]])
        restored = strategy_from_dict(strategy_to_dict(strategy))
        assert restored == strategy

    def test_wrong_kind_rejected(self):
        payload = strategy_to_dict(Strategy([[0]]))
        payload["kind"] = "nope"
        with pytest.raises(InvalidStrategyError, match="kind"):
            strategy_from_dict(payload)


class TestStringAndFileApis:
    def test_dumps_loads_instance(self, exact_instance):
        assert loads(dumps(exact_instance)) == exact_instance

    def test_dumps_loads_strategy(self):
        strategy = Strategy([[0, 1], [2]])
        assert loads(dumps(strategy)) == strategy

    def test_dumps_rejects_other_types(self):
        with pytest.raises(TypeError):
            dumps(42)

    def test_loads_rejects_unknown_kind(self):
        with pytest.raises(InvalidInstanceError, match="unknown"):
            loads('{"kind": "mystery"}')

    def test_file_round_trip(self, tmp_path, exact_instance):
        path = tmp_path / "instance.json"
        save(exact_instance, str(path))
        assert load(str(path)) == exact_instance

    def test_planned_strategy_survives_disk(self, tmp_path, small_instance):
        from repro.core import conference_call_heuristic, expected_paging_float

        plan = conference_call_heuristic(small_instance)
        path = tmp_path / "plan.json"
        save(plan.strategy, str(path))
        restored = load(str(path))
        assert expected_paging_float(small_instance, restored) == pytest.approx(
            float(plan.expected_paging)
        )
