"""Backend selection, environment overrides, and graceful fallback."""

import numpy as np
import pytest

from repro.core import plan_batch
from repro.core.backends import (
    BACKENDS,
    BackendUnavailableError,
    _object_digest,
    available_backends,
    compiled_available,
    load_compiled,
    resolve_backend,
)


def _tiny_batch():
    rng = np.random.default_rng(np.random.SeedSequence(7, spawn_key=(0,)))
    return rng.dirichlet(np.ones(8), size=(3, 2))


class TestResolveBackend:
    def test_numpy_is_always_resolvable(self):
        assert resolve_backend("numpy") == "numpy"

    def test_auto_resolves_to_an_available_backend(self):
        assert resolve_backend("auto") in available_backends()

    def test_unknown_backend_is_a_value_error(self):
        with pytest.raises(ValueError, match="unknown planner backend"):
            resolve_backend("fortran")

    def test_available_backends_always_include_numpy(self):
        assert "numpy" in available_backends()
        assert set(available_backends()) <= set(BACKENDS)


class TestDisableCompiled:
    """REPRO_DISABLE_COMPILED simulates a machine without a toolchain.

    The variable is checked before the per-process memo, so it works even
    after the kernel has already been built and loaded in this process —
    that is what lets one test process cover both configurations.
    """

    def test_compiled_reports_unavailable(self, monkeypatch):
        monkeypatch.setenv("REPRO_DISABLE_COMPILED", "1")
        assert not compiled_available()
        assert available_backends() == ("numpy",)

    def test_load_compiled_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_DISABLE_COMPILED", "1")
        with pytest.raises(BackendUnavailableError, match="REPRO_DISABLE_COMPILED"):
            load_compiled()

    def test_auto_falls_back_to_numpy(self, monkeypatch):
        monkeypatch.setenv("REPRO_DISABLE_COMPILED", "1")
        assert resolve_backend("auto") == "numpy"
        result = plan_batch(_tiny_batch(), 2)
        assert result.backend == "numpy"

    def test_explicit_compiled_request_raises_instead_of_degrading(
        self, monkeypatch
    ):
        monkeypatch.setenv("REPRO_DISABLE_COMPILED", "1")
        with pytest.raises(BackendUnavailableError):
            resolve_backend("compiled")
        with pytest.raises(BackendUnavailableError):
            plan_batch(_tiny_batch(), 2, backend="compiled")


class TestPlannerBackendOverride:
    def test_forces_auto_to_numpy(self, monkeypatch):
        monkeypatch.setenv("REPRO_PLANNER_BACKEND", "numpy")
        assert resolve_backend("auto") == "numpy"
        assert plan_batch(_tiny_batch(), 2).backend == "numpy"

    def test_explicit_argument_beats_the_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_PLANNER_BACKEND", "compiled")
        assert resolve_backend("numpy") == "numpy"

    def test_forced_unknown_name_is_a_value_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_PLANNER_BACKEND", "fortran")
        with pytest.raises(ValueError, match="unknown planner backend"):
            resolve_backend("auto")


class TestObjectDigest:
    """The .so cache key covers the toolchain, not just the C source.

    A cache directory shared across machines (REPRO_CACHE_DIR) or a
    compiler upgrade must rebuild rather than reuse an object compiled
    with -march=native for a different microarchitecture.
    """

    def test_source_changes_the_digest(self):
        assert _object_digest("a", "cc", "v1") != _object_digest("b", "cc", "v1")

    def test_compiler_identity_changes_the_digest(self):
        assert _object_digest("a", "cc", "v1") != _object_digest("a", "clang", "v1")

    def test_compiler_version_changes_the_digest(self):
        assert _object_digest("a", "cc", "gcc 12.2") != _object_digest(
            "a", "cc", "gcc 13.1"
        )

    def test_machine_changes_the_digest(self, monkeypatch):
        import repro.core.backends as backends

        before = _object_digest("a", "cc", "v1")
        monkeypatch.setattr(
            backends.platform, "machine", lambda: "other-arch"
        )
        assert _object_digest("a", "cc", "v1") != before


@pytest.mark.skipif(not compiled_available(), reason="no C toolchain")
class TestCompiledBackend:
    def test_load_is_memoized(self):
        assert load_compiled() is load_compiled()

    def test_resolve_prefers_compiled(self):
        assert resolve_backend("auto") == "compiled"
        assert resolve_backend("compiled") == "compiled"

    def test_plan_batch_reports_compiled(self):
        assert plan_batch(_tiny_batch(), 2, backend="compiled").backend == "compiled"
