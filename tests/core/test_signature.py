"""Unit tests for the Signature problem (find k of m, Section 5)."""

import itertools
from fractions import Fraction

import pytest

from repro.core import (
    Strategy,
    conference_call_heuristic,
    expected_paging_signature,
    optimize_signature_over_order,
    poisson_binomial_tail,
    signature_heuristic,
)
from repro.core.ordering import by_expected_devices
from repro.core.signature import prefix_stop_probabilities
from repro.errors import InvalidInstanceError
from tests.conftest import random_exact_instance, random_instance


def tail_by_enumeration(probabilities, quorum):
    """Brute-force Poisson-binomial tail over all outcome vectors."""
    total = 0.0
    for outcome in itertools.product((0, 1), repeat=len(probabilities)):
        if sum(outcome) < quorum:
            continue
        weight = 1.0
        for hit, p in zip(outcome, probabilities):
            weight *= float(p) if hit else 1.0 - float(p)
        total += weight
    return total


class TestPoissonBinomial:
    def test_matches_enumeration(self, rng):
        for _ in range(10):
            probabilities = list(rng.uniform(0, 1, size=4))
            for quorum in range(5):
                assert poisson_binomial_tail(probabilities, quorum) == pytest.approx(
                    tail_by_enumeration(probabilities, quorum)
                )

    def test_exact_fractions(self):
        probabilities = [Fraction(1, 2), Fraction(1, 3)]
        # P[>=1] = 1 - (1/2)(2/3) = 2/3;  P[>=2] = 1/6.
        assert poisson_binomial_tail(probabilities, 1) == Fraction(2, 3)
        assert poisson_binomial_tail(probabilities, 2) == Fraction(1, 6)

    def test_quorum_zero_is_certain(self):
        assert poisson_binomial_tail([0.5, 0.5], 0) == 1

    def test_quorum_above_count_impossible(self):
        assert poisson_binomial_tail([0.5], 2) == 0


class TestEdgesOfTheQuorum:
    def test_quorum_m_matches_conference_call(self, rng):
        """k = m is the Conference Call problem."""
        for _ in range(6):
            instance = random_instance(rng, num_devices=3, num_cells=7, max_rounds=3)
            signature = signature_heuristic(instance, instance.num_devices)
            conference = conference_call_heuristic(instance)
            assert float(signature.expected_paging) == pytest.approx(
                float(conference.expected_paging)
            )

    def test_quorum_one_matches_yellow_pages(self, rng):
        """k = 1 over the same order matches the Yellow Pages rule."""
        from repro.core import optimize_yellow_over_order

        instance = random_instance(rng, num_devices=3, num_cells=6, max_rounds=3)
        order = by_expected_devices(instance)
        signature = optimize_signature_over_order(instance, order, 1)
        yellow = optimize_yellow_over_order(instance, order)
        assert float(signature.expected_paging) == pytest.approx(
            float(yellow.expected_paging)
        )

    def test_ep_monotone_in_quorum(self, rng):
        """Needing more devices can only prolong the search."""
        instance = random_instance(rng, num_devices=4, num_cells=8, max_rounds=3)
        values = [
            float(signature_heuristic(instance, quorum).expected_paging)
            for quorum in range(1, 5)
        ]
        for i in range(len(values) - 1):
            assert values[i] <= values[i + 1] + 1e-9

    def test_rejects_bad_quorum(self, small_instance):
        with pytest.raises(InvalidInstanceError, match="quorum"):
            prefix_stop_probabilities(small_instance, tuple(range(6)), 0)
        with pytest.raises(InvalidInstanceError, match="quorum"):
            prefix_stop_probabilities(small_instance, tuple(range(6)), 5)


class TestOptimizationOverOrder:
    def test_cut_dp_beats_every_manual_cut(self, rng):
        instance = random_instance(rng, num_devices=3, num_cells=6, max_rounds=2)
        order = by_expected_devices(instance)
        result = optimize_signature_over_order(instance, order, 2)
        for split in range(1, 6):
            strategy = Strategy.from_order_and_sizes(order, (split, 6 - split))
            manual = expected_paging_signature(instance, strategy, 2)
            assert float(result.expected_paging) <= float(manual) + 1e-12

    def test_value_matches_strategy_evaluation(self, rng):
        instance = random_instance(rng, num_devices=3, num_cells=7, max_rounds=3)
        result = signature_heuristic(instance, 2)
        assert float(result.expected_paging) == pytest.approx(
            float(expected_paging_signature(instance, result.strategy, 2))
        )

    def test_exact_arithmetic(self, rng):
        instance = random_exact_instance(rng, num_devices=3, num_cells=5, max_rounds=2)
        result = signature_heuristic(instance, 2)
        assert isinstance(result.expected_paging, Fraction)

    def test_monte_carlo_agreement(self, rng):
        instance = random_instance(rng, num_devices=3, num_cells=6, max_rounds=3)
        result = signature_heuristic(instance, 2)
        total = 0
        trials = 15_000
        for _ in range(trials):
            locations = instance.sample_locations(rng)
            paged = 0
            prefix = set()
            for group in result.strategy.groups:
                paged += len(group)
                prefix |= group
                if sum(1 for cell in locations if cell in prefix) >= 2:
                    break
            total += paged
        assert total / trials == pytest.approx(float(result.expected_paging), abs=0.1)
