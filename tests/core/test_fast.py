"""Unit tests for the numpy-accelerated planner."""

import time

import numpy as np
import pytest

from repro.core import (
    by_expected_devices,
    conference_call_heuristic,
    conference_call_heuristic_fast,
    expected_paging_float,
    optimize_cuts,
    optimize_cuts_fast,
    prefix_stop_probabilities_fast,
)
from repro.errors import InfeasibleError
from tests.conftest import random_instance


class TestPrefixStops:
    def test_matches_reference(self, rng):
        instance = random_instance(rng, num_devices=3, num_cells=9)
        order = by_expected_devices(instance)
        reference = instance.prefix_find_probabilities(order)
        fast = prefix_stop_probabilities_fast(instance.as_array(), order)
        assert np.allclose([float(v) for v in reference], fast)

    def test_endpoint_values(self, rng):
        instance = random_instance(rng, num_devices=2, num_cells=5)
        fast = prefix_stop_probabilities_fast(
            instance.as_array(), tuple(range(5))
        )
        assert fast[0] == 0.0
        assert fast[-1] == pytest.approx(1.0)


class TestOptimizeCutsFast:
    def test_matches_reference_values(self, rng):
        for _ in range(10):
            instance = random_instance(rng, num_devices=2, num_cells=9, max_rounds=4)
            order = by_expected_devices(instance)
            finds = [
                float(v) for v in instance.prefix_find_probabilities(order)
            ]
            slow_sizes, slow_value = optimize_cuts(finds, 4)
            fast_sizes, fast_value = optimize_cuts_fast(np.array(finds), 4)
            assert fast_value == pytest.approx(slow_value)
            assert fast_sizes == slow_sizes

    def test_matches_reference_with_cap(self, rng):
        instance = random_instance(rng, num_devices=2, num_cells=8, max_rounds=4)
        finds = [
            float(v)
            for v in instance.prefix_find_probabilities(tuple(range(8)))
        ]
        slow = optimize_cuts(finds, 4, max_group_size=3)
        fast = optimize_cuts_fast(np.array(finds), 4, max_group_size=3)
        assert fast[1] == pytest.approx(slow[1])
        assert max(fast[0]) <= 3

    def test_rejects_infeasible(self):
        with pytest.raises(InfeasibleError):
            optimize_cuts_fast(np.array([0.0, 1.0]), 5)
        with pytest.raises(InfeasibleError):
            optimize_cuts_fast(np.array([0.0, 0.5, 1.0]), 2, max_group_size=0)


class TestFastHeuristic:
    def test_matches_reference_strategy(self, rng):
        for _ in range(8):
            instance = random_instance(rng, num_devices=3, num_cells=10, max_rounds=3)
            reference = conference_call_heuristic(instance)
            fast = conference_call_heuristic_fast(instance)
            assert float(fast.expected_paging) == pytest.approx(
                float(reference.expected_paging)
            )
            assert fast.order == reference.order

    def test_value_matches_strategy(self, rng):
        instance = random_instance(rng, num_devices=2, num_cells=12, max_rounds=4)
        fast = conference_call_heuristic_fast(instance)
        assert float(fast.expected_paging) == pytest.approx(
            expected_paging_float(instance, fast.strategy)
        )

    def test_bandwidth_cap(self, rng):
        instance = random_instance(rng, num_devices=2, num_cells=12, max_rounds=4)
        fast = conference_call_heuristic_fast(instance, max_group_size=4)
        assert max(fast.group_sizes) <= 4

    def test_large_instance_runs_quickly(self, rng):
        matrix = rng.dirichlet(np.ones(800), size=4)
        from repro.core import PagingInstance

        instance = PagingInstance.from_array(matrix, max_rounds=5)
        start = time.perf_counter()
        result = conference_call_heuristic_fast(instance)
        elapsed = time.perf_counter() - start
        assert sum(result.group_sizes) == 800
        assert elapsed < 5.0  # generous bound; typically well under 1s

    def test_round_override(self, rng):
        instance = random_instance(rng, num_devices=2, num_cells=10, max_rounds=5)
        fast = conference_call_heuristic_fast(instance, max_rounds=2)
        assert len(fast.group_sizes) == 2
