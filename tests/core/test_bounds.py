"""Unit tests for the paper's bound constants and closed forms."""

from fractions import Fraction

import pytest

from repro.core import (
    alpha_sequence,
    approximation_factor,
    b_sequence,
    lemma31_function,
    lemma31_maximum,
    lemma32_lower_bound,
    lemma34_lower_bound,
    lemma34_objective,
    optimal_group_fractions,
    optimal_mass_fractions,
    ratio_lower_bound,
    special_case_factor,
)


class TestAlphaSequence:
    def test_known_values_m2(self):
        alphas = alpha_sequence(2, 4, exact=True)
        assert alphas[0] == Fraction(2, 3)
        assert alphas[1] == Fraction(2, 3 - Fraction(4, 9))  # 18/23
        assert alphas[1] == Fraction(18, 23)

    def test_monotone_increasing_below_one(self):
        for m in (2, 3, 5):
            alphas = alpha_sequence(m, 6)
            assert alphas[0] == pytest.approx(m / (m + 1))
            for i in range(len(alphas) - 1):
                assert alphas[i] < alphas[i + 1]
            assert alphas[-1] < 1

    def test_rejects_small_parameters(self):
        with pytest.raises(ValueError):
            alpha_sequence(1, 3)
        with pytest.raises(ValueError):
            alpha_sequence(2, 1)


class TestBSequence:
    def test_known_values(self):
        bs = b_sequence(2, 2, Fraction(9), exact=True)
        assert bs == (0, 6, 9)  # b_1 = 2c/3

    def test_three_rounds(self):
        bs = b_sequence(2, 3, Fraction(23), exact=True)
        assert bs[2] == Fraction(18, 23) * 23
        assert bs[1] == Fraction(2, 3) * bs[2]

    def test_increasing_chain(self):
        bs = b_sequence(3, 5, 100.0)
        for i in range(len(bs) - 1):
            assert bs[i] < bs[i + 1]
        assert bs[0] == 0
        assert bs[-1] == 100.0

    def test_fractions_sum_to_one(self):
        for m, d in ((2, 2), (3, 4), (4, 3)):
            assert sum(optimal_group_fractions(m, d, exact=True)) == 1
            assert sum(optimal_mass_fractions(m, d, exact=True)) == 1

    def test_mass_fractions_are_half_cardinality(self):
        r = optimal_group_fractions(2, 3, exact=True)
        x = optimal_mass_fractions(2, 3, exact=True)
        for j in range(2):  # all but the last
            assert x[j] == r[j] / 2


class TestLemma31:
    def test_function_at_maximum(self):
        for c in (3, 6, 12):
            value = lemma31_function(Fraction(1, 2), Fraction(2 * c, 3), Fraction(c))
            assert value == lemma31_maximum(c)

    def test_maximum_closed_form(self):
        c = Fraction(9)
        expected = Fraction(4, 27) * c**3 - Fraction(2, 9) * c**2 + c / 12
        assert lemma31_maximum(9) == expected

    def test_interior_points_below_maximum(self, rng):
        c = 9.0
        best = float(lemma31_maximum(c))
        for _ in range(200):
            x = rng.uniform(0, 1)
            y = rng.uniform(0, c)
            assert lemma31_function(x, y, c) <= best + 1e-9

    def test_float_and_fraction_agree(self):
        exact = lemma31_function(Fraction(1, 4), Fraction(5), Fraction(9))
        approx = lemma31_function(0.25, 5.0, 9.0)
        assert approx == pytest.approx(float(exact))


class TestLowerBounds:
    def test_lemma32_bound_manual(self):
        # c = 3: LB = 3 - f(1/2, 2)/((5/2)(2)) = 3 - 2.25/5 = 51/20.
        assert lemma32_lower_bound(3) == Fraction(51, 20)

    def test_lemma32_bound_below_c(self):
        for c in (3, 6, 9, 12):
            assert 0 < lemma32_lower_bound(c) < c

    def test_lemma34_objective(self):
        assert lemma34_objective([2.0, 4.0], 2) == pytest.approx((4 - 2) * 4)

    def test_lemma34_lower_bound_below_c(self):
        for m, d, c in ((2, 2, 9), (3, 3, 12)):
            assert 0 < lemma34_lower_bound(m, d, c) < c


class TestFactors:
    def test_approximation_factor(self):
        assert approximation_factor() == pytest.approx(1.5819767, abs=1e-6)

    def test_special_case_factor(self):
        assert special_case_factor() == pytest.approx(4 / 3)

    def test_ratio_lower_bound(self):
        assert ratio_lower_bound() == Fraction(320, 317)
        assert approximation_factor() > float(ratio_lower_bound())
