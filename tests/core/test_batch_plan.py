"""Property suite: the batched planner is bit-identical to the scalar one.

Over SeedSequence-seeded random batches (varying devices, cells, rounds,
group-size caps), every row that :func:`repro.core.batch_plan.plan_batch`
produces — order, group sizes, expected paging — must equal the per-
instance :func:`repro.core.fast.conference_call_heuristic_fast` /
:func:`repro.core.fast.optimize_cuts_fast` results *exactly* (``==`` on
floats, not ``approx``), on every available backend.  Infeasible budgets
must raise exactly when the scalar planner raises.
"""

import numpy as np
import pytest

from repro.core import (
    PagingInstance,
    available_backends,
    conference_call_heuristic_fast,
    optimize_cuts_batch,
    optimize_cuts_fast,
    plan_batch,
    stack_instances,
)
from repro.errors import InfeasibleError

ROOT_SEED = 20020722

#: (batch, devices, cells, rounds, max_group_size) — includes tight caps
#: (d * b barely >= c), d = 1, c = 1, cap-free rows, and a cap above the
#: cell count (b > c must plan exactly like b == c, and must stay inside
#: the compiled kernel's scratch padding).
SHAPES = [
    (16, 2, 12, 3, None),
    (16, 4, 30, 5, None),
    (8, 3, 25, 4, 7),
    (8, 1, 10, 2, 5),
    (4, 2, 1, 1, None),
    (32, 4, 40, 8, 5),
    (8, 2, 10, 2, 40),
]

BACKENDS = available_backends()


def _random_batch(shape_index):
    """Instances plus the exact float matrix both pipelines will see.

    ``PagingInstance.from_array`` renormalizes rows (and renormalization
    is not a bit-level fixed point), so bit-identity claims only make
    sense when the scalar planner and the batch kernel consume the same
    ``as_array()`` bits — build the instances once and stack them.
    """
    batch, devices, cells, rounds, _cap = SHAPES[shape_index]
    seed = np.random.SeedSequence(ROOT_SEED, spawn_key=(shape_index,))
    rng = np.random.default_rng(seed)
    raw = rng.dirichlet(np.ones(cells), size=(batch, devices))
    instances = [PagingInstance.from_array(row, rounds) for row in raw]
    matrices = np.stack([instance.as_array() for instance in instances])
    return instances, matrices


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("shape_index", range(len(SHAPES)))
def test_plan_batch_rows_equal_scalar_planner(shape_index, backend):
    batch, devices, cells, rounds, cap = SHAPES[shape_index]
    instances, matrices = _random_batch(shape_index)
    result = plan_batch(matrices, rounds, max_group_size=cap, backend=backend)
    assert result.backend == backend
    assert len(result) == batch
    assert bool(result.feasible.all())
    for i, instance in enumerate(instances):
        reference = conference_call_heuristic_fast(
            instance, max_group_size=cap
        )
        row = result.result(i)
        assert row.order == reference.order
        assert row.group_sizes == reference.group_sizes
        # Bit-identity, not approx: both pipelines run the same IEEE ops.
        assert row.expected_paging == reference.expected_paging
        assert row.strategy == reference.strategy


@pytest.mark.parametrize("backend", BACKENDS)
def test_optimize_cuts_batch_equals_scalar_including_exact_ties(backend):
    # linspace find tables create exact float ties between cut candidates,
    # exercising the first-occurrence argmax/backtrack rule.
    c, d = 20, 4
    tied = np.linspace(0.0, 1.0, c + 1)
    rng = np.random.default_rng(np.random.SeedSequence(ROOT_SEED, spawn_key=(99,)))
    random_rows = np.sort(rng.random((6, c + 1)), axis=1)
    random_rows[:, 0] = 0.0
    finds = np.vstack([tied, np.zeros(c + 1), np.ones(c + 1), random_rows])
    for cap in (None, 6, c, 3 * c):
        sizes, values = optimize_cuts_batch(
            finds, d, max_group_size=cap, backend=backend
        )
        for i in range(finds.shape[0]):
            ref_sizes, ref_value = optimize_cuts_fast(
                finds[i], d, max_group_size=cap
            )
            assert tuple(int(s) for s in sizes[i]) == ref_sizes
            assert values[i].item() == ref_value


@pytest.mark.parametrize("backend", BACKENDS)
def test_numpy_chunking_is_invisible(backend):
    _instances, matrices = _random_batch(1)
    rounds = SHAPES[1][3]
    one_shot = plan_batch(matrices, rounds, backend=backend)
    chunked = plan_batch(matrices, rounds, backend=backend, chunk=3)
    assert np.array_equal(one_shot.orders, chunked.orders)
    assert np.array_equal(one_shot.group_sizes, chunked.group_sizes)
    assert np.array_equal(one_shot.values, chunked.values)


@pytest.mark.skipif(len(BACKENDS) < 2, reason="compiled backend unavailable")
def test_backends_agree_bit_for_bit():
    _instances, matrices = _random_batch(5)
    rounds, cap = SHAPES[5][3], SHAPES[5][4]
    results = [
        plan_batch(matrices, rounds, max_group_size=cap, backend=backend)
        for backend in BACKENDS
    ]
    for other in results[1:]:
        assert np.array_equal(results[0].orders, other.orders)
        assert np.array_equal(results[0].group_sizes, other.group_sizes)
        assert np.array_equal(results[0].values, other.values)


@pytest.mark.parametrize("backend", BACKENDS)
def test_infeasible_budgets_raise_exactly_like_the_scalar_planner(backend):
    _instances, matrices = _random_batch(0)
    matrices = matrices[:4]
    cells = matrices.shape[2]
    # d * b < c: the scalar planner raises, so the batch must too.
    with pytest.raises(InfeasibleError):
        optimize_cuts_fast(np.zeros(cells + 1), 3, max_group_size=2)
    with pytest.raises(InfeasibleError):
        plan_batch(matrices, 3, max_group_size=2, backend=backend)
    # d outside 1 <= d <= c.
    with pytest.raises(InfeasibleError):
        plan_batch(matrices, cells + 1, backend=backend)
    with pytest.raises(InfeasibleError):
        plan_batch(matrices, 0, backend=backend)


def test_plan_batch_accepts_instance_sequences(rng):
    matrices = rng.dirichlet(np.ones(9), size=(5, 2))
    instances = [PagingInstance.from_array(row, 3) for row in matrices]
    result = plan_batch(instances)  # num_rounds from the shared max_rounds
    for i, instance in enumerate(instances):
        assert result.result(i).order == conference_call_heuristic_fast(instance).order


def test_plan_batch_rejects_ambiguous_rounds(rng):
    matrices = rng.dirichlet(np.ones(9), size=(2, 2))
    instances = [
        PagingInstance.from_array(matrices[0], 2),
        PagingInstance.from_array(matrices[1], 3),
    ]
    with pytest.raises(ValueError, match="disagree on max_rounds"):
        plan_batch(instances)
    # Explicit num_rounds resolves the disagreement.
    assert len(plan_batch(instances, 2)) == 2


def test_plan_batch_raw_array_requires_rounds(rng):
    matrices = rng.dirichlet(np.ones(6), size=(3, 2))
    with pytest.raises(ValueError, match="num_rounds"):
        plan_batch(matrices)
    with pytest.raises(ValueError, match="batch, devices, cells"):
        plan_batch(matrices[0], 2)


@pytest.mark.parametrize("backend", BACKENDS)
def test_cap_above_cell_count_plans_like_uncapped(backend):
    # Any cap above c is equivalent to cap == c; the oversized cap must not
    # read outside the compiled kernel's padded scratch rows.
    _instances, matrices = _random_batch(3)
    rounds = SHAPES[3][3]
    cells = matrices.shape[2]
    huge = plan_batch(matrices, rounds, max_group_size=4 * cells, backend=backend)
    capped = plan_batch(matrices, rounds, max_group_size=cells, backend=backend)
    assert bool(huge.feasible.all())
    assert np.array_equal(huge.orders, capped.orders)
    assert np.array_equal(huge.group_sizes, capped.group_sizes)
    assert np.array_equal(huge.values, capped.values)
    assert (huge.group_sizes <= cells).all()


@pytest.mark.parametrize("backend", BACKENDS)
def test_empty_batch_returns_empty_result(backend):
    c, d = 8, 2
    result = plan_batch(np.empty((0, 2, c)), d, backend=backend)
    assert len(result) == 0
    assert result.orders.shape == (0, c)
    assert result.group_sizes.shape == (0, d)
    assert result.values.shape == (0,)
    assert result.feasible.shape == (0,)
    sizes, values = optimize_cuts_batch(np.empty((0, c + 1)), d, backend=backend)
    assert sizes.shape == (0, d)
    assert values.shape == (0,)


@pytest.mark.parametrize("backend", BACKENDS)
def test_negative_zero_weights_tie_break_by_index(backend):
    # np.argsort treats -0.0 == 0.0 as ties broken by original index; a raw
    # bit-pattern sort would put -0.0 (sign bit set) before every positive
    # weight.  Both backends must order ties identically.
    c = 6
    matrices = np.zeros((2, 2, c))
    matrices[:, :, 1] = -0.0
    matrices[:, :, 4] = -0.0
    matrices[:, :, 3] = 0.25
    result = plan_batch(matrices, 2, backend=backend)
    expected = np.argsort(
        -matrices.sum(axis=1), axis=1, kind="stable"
    ).astype(np.intp)
    assert np.array_equal(result.orders, expected)


def test_stack_instances_rejects_mixed_shapes(rng):
    a = PagingInstance.from_array(rng.dirichlet(np.ones(6), size=2), 2)
    b = PagingInstance.from_array(rng.dirichlet(np.ones(7), size=2), 2)
    with pytest.raises(ValueError, match="shape"):
        stack_instances([a, b])
    with pytest.raises(ValueError, match="empty"):
        stack_instances([])
