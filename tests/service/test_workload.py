"""Workload-generator and serve-bench tests (``repro.service.workload``)."""

import numpy as np
import pytest

from repro.service import (
    PagingController,
    ServiceConfig,
    WorkloadConfig,
    build_requests,
    run_closed_loop,
    serve_bench,
)


SMALL = WorkloadConfig(
    requests=400,
    areas=6,
    devices=3,
    cells=10,
    rounds=3,
    profiles_per_area=3,
    hot_fraction=0.9,
    seed=11,
)


class TestBuildRequests:
    def test_deterministic_given_seed(self):
        first = build_requests(SMALL)
        second = build_requests(SMALL)
        assert len(first) == SMALL.requests
        for a, b in zip(first, second):
            assert a.area == b.area
            assert a.rounds == b.rounds
            assert a.matrix.tobytes() == b.matrix.tobytes()

    def test_rows_are_probability_distributions(self):
        for request in build_requests(SMALL)[:20]:
            sums = request.matrix.sum(axis=1)
            assert np.allclose(sums, 1.0)
            assert request.matrix.min() >= 0.0

    def test_hot_pool_profiles_recur(self):
        seen = {}
        for request in build_requests(SMALL):
            seen.setdefault(request.matrix.tobytes(), 0)
            seen[request.matrix.tobytes()] += 1
        recurring = sum(1 for count in seen.values() if count > 1)
        assert recurring > 0
        assert len(seen) < SMALL.requests  # far fewer profiles than requests

    @pytest.mark.parametrize(
        "overrides",
        [
            {"requests": 0},
            {"areas": 0},
            {"devices": 0},
            {"profiles_per_area": 0},
            {"hot_fraction": 1.5},
            {"hot_fraction": -0.1},
        ],
    )
    def test_invalid_config_rejected(self, overrides):
        import dataclasses

        with pytest.raises(ValueError):
            dataclasses.replace(SMALL, **overrides)


class TestRunClosedLoop:
    def test_metrics_are_per_pass_deltas(self):
        controller = PagingController(ServiceConfig())
        requests = build_requests(SMALL)
        cold = run_closed_loop(controller, requests)
        warm = run_closed_loop(controller, requests)
        assert cold["requests"] == SMALL.requests
        assert warm["requests"] == SMALL.requests
        assert cold["throughput_rps"] > 0.0
        # the warm pass reports its own (perfect) hit rate, not a mixture
        assert warm["hit_rate"] == pytest.approx(1.0)
        assert warm["batches"] == 0
        assert cold["hit_rate"] < 1.0

    def test_nothing_left_pending(self):
        controller = PagingController(ServiceConfig(batch_window=100))
        run_closed_loop(controller, build_requests(SMALL))
        assert controller.pending == 0


class TestServeBench:
    def test_report_shape(self):
        report = serve_bench(ServiceConfig(), SMALL)
        assert report["schema"] == "repro-serve-bench/1"
        assert report["workload"]["requests"] == SMALL.requests
        assert report["service"]["solver"] == "heuristic-batch"
        for regime in ("cold", "warm"):
            assert report[regime]["throughput_rps"] > 0.0
        assert report["warm"]["hit_rate"] == pytest.approx(1.0)
        assert report["stats"]["requests"] == 2 * SMALL.requests
