"""Behavior and property tests for the paging controller.

Covers the ISSUE 8 obligations: cache-hit bit-identity at quantization
step 0 (property test over a seeded request stream), the
quantization-induced expected-paging bound for step > 0, batch-window
flush on size vs timeout, backpressure shedding, and the ``service.*``
observability events.
"""

import numpy as np
import pytest

from repro.core import expected_paging_float
from repro.obs import MemorySink, Tracer, use_tracer
from repro.service import (
    PagingController,
    PlanRequest,
    ServiceConfig,
    WorkloadConfig,
    build_requests,
    plan_cache_key,
    quantization_bound,
    request_instance,
)
from repro.solvers import solve_instance


def _profile(seed, devices=3, cells=10):
    rng = np.random.default_rng(seed)
    matrix = rng.random((devices, cells))
    matrix /= matrix.sum(axis=1, keepdims=True)
    return matrix


class TestSubmitLifecycle:
    def test_miss_then_flush_then_hit(self):
        controller = PagingController(ServiceConfig())
        request = PlanRequest("la-1", _profile(0), 3)
        first = controller.submit(request)
        assert first.status == "pending"
        assert not first.done
        assert controller.pending == 1
        controller.flush()
        assert first.status == "ok"
        assert first.plan is not None
        assert not first.cache_hit
        second = controller.submit(request)
        assert second.status == "ok"
        assert second.cache_hit
        assert second.plan is first.plan
        assert controller.pending == 0

    def test_pending_dedup_shares_one_solve(self):
        controller = PagingController(ServiceConfig(batch_window=100))
        request = PlanRequest("la-1", _profile(0), 3)
        tickets = [controller.submit(request) for _ in range(3)]
        assert [ticket.status for ticket in tickets] == ["pending"] * 3
        controller.flush()
        stats = controller.stats()
        assert stats["planned"] == 1  # one distinct key planned once
        assert all(ticket.status == "ok" for ticket in tickets)
        assert tickets[1].plan is tickets[0].plan
        assert tickets[2].plan is tickets[0].plan

    def test_run_preserves_request_order(self):
        controller = PagingController(ServiceConfig())
        requests = [PlanRequest(f"a{i}", _profile(i), 3) for i in range(5)]
        tickets = controller.run(requests)
        assert [t.request for t in tickets] == requests
        assert all(ticket.status == "ok" for ticket in tickets)

    def test_shard_routing_matches_shard_map(self):
        controller = PagingController(ServiceConfig(num_shards=4))
        ticket = controller.submit(PlanRequest("la-9", _profile(1), 3))
        assert ticket.shard == controller.shard_of("la-9")

    def test_invalidate_forces_fresh_misses(self):
        controller = PagingController(ServiceConfig())
        request = PlanRequest("la-1", _profile(0), 3)
        controller.run([request])
        assert controller.submit(request).cache_hit
        controller.invalidate()
        assert controller.submit(request).status == "pending"


class TestBatchWindow:
    def test_flush_on_window_size(self):
        controller = PagingController(ServiceConfig(batch_window=3, batch_timeout_s=60.0))
        tickets = [
            controller.submit(PlanRequest("la-1", _profile(seed), 3))
            for seed in range(2)
        ]
        assert all(ticket.status == "pending" for ticket in tickets)
        third = controller.submit(PlanRequest("la-1", _profile(2), 3))
        # the third distinct key fills the window: everything flushes
        assert third.status == "ok"
        assert all(ticket.status == "ok" for ticket in tickets)
        assert controller.stats()["batches"] == 1

    def test_flush_on_timeout_via_poll(self):
        now = [0.0]
        controller = PagingController(
            ServiceConfig(batch_window=100, batch_timeout_s=1.0),
            clock=lambda: now[0],
        )
        ticket = controller.submit(PlanRequest("la-1", _profile(0), 3))
        assert ticket.status == "pending"
        assert controller.poll() == 0  # window not elapsed yet
        now[0] = 2.0
        assert controller.poll() == 1
        assert ticket.status == "ok"

    def test_flush_on_timeout_via_submit(self):
        now = [0.0]
        controller = PagingController(
            ServiceConfig(batch_window=100, batch_timeout_s=1.0),
            clock=lambda: now[0],
        )
        first = controller.submit(PlanRequest("la-1", _profile(0), 3))
        now[0] = 5.0
        second = controller.submit(PlanRequest("la-1", _profile(1), 3))
        # the late submit rides the flush its own arrival triggered
        assert first.status == "ok"
        assert second.status == "ok"

    def test_incompatible_shapes_form_separate_batches(self):
        controller = PagingController(ServiceConfig(batch_window=100))
        controller.submit(PlanRequest("la-1", _profile(0, cells=10), 3))
        controller.submit(PlanRequest("la-1", _profile(1, cells=12), 3))
        controller.submit(PlanRequest("la-1", _profile(2, cells=10), 2))
        assert controller.flush() == 3
        assert controller.stats()["batches"] == 3


class TestBackpressure:
    def test_shed_beyond_max_pending(self):
        controller = PagingController(
            ServiceConfig(batch_window=100, batch_timeout_s=60.0, max_pending=2)
        )
        area = "la-1"  # same area -> same shard -> same bounded queue
        first = controller.submit(PlanRequest(area, _profile(0), 3))
        second = controller.submit(PlanRequest(area, _profile(1), 3))
        third = controller.submit(PlanRequest(area, _profile(2), 3))
        assert first.status == "pending"
        assert second.status == "pending"
        assert third.status == "shed"
        assert third.done
        assert "backpressure" in third.reason
        assert controller.stats()["sheds"] == 1
        controller.flush()
        # shed requests are not planned, the admitted ones are
        assert third.plan is None
        assert first.status == "ok"

    def test_cache_hits_bypass_the_queue(self):
        controller = PagingController(
            ServiceConfig(batch_window=100, batch_timeout_s=60.0, max_pending=1)
        )
        request = PlanRequest("la-1", _profile(0), 3)
        controller.run([request])
        blocker = controller.submit(PlanRequest("la-1", _profile(1), 3))
        assert blocker.status == "pending"
        # the queue is full, but a hit never enters it
        assert controller.submit(request).status == "ok"


class TestBitIdentity:
    def test_cache_hit_is_bit_identical_to_fresh_solve(self):
        """ISSUE 8 acceptance: at step 0, a cache hit equals a fresh
        ``solve_instance`` call bit for bit, over a seeded stream."""
        workload = WorkloadConfig(
            requests=300,
            areas=6,
            devices=3,
            cells=12,
            rounds=3,
            profiles_per_area=3,
            hot_fraction=0.9,
            seed=77,
        )
        requests = build_requests(workload)
        # window 1: every miss plans immediately, so recurrences are hits
        controller = PagingController(
            ServiceConfig(quantization_step=0.0, batch_window=1)
        )
        tickets = controller.run(requests)
        hits = [ticket for ticket in tickets if ticket.cache_hit]
        assert len(hits) > 100  # the stream recurs, so hits dominate
        for ticket in hits[::17] + hits[-3:]:
            fresh = solve_instance(
                "heuristic-fast",
                request_instance(ticket.request),
                max_rounds=ticket.request.rounds,
            )
            cached_value = float(ticket.plan.expected_paging)
            fresh_value = float(fresh.expected_paging)
            assert cached_value.hex() == fresh_value.hex()
            assert ticket.plan.order == fresh.extras["order"]
            assert ticket.plan.group_sizes == fresh.extras["group_sizes"]

    def test_scalar_fallback_solver_matches_batch(self):
        request = PlanRequest("la-1", _profile(5), 3)
        batched = PagingController(ServiceConfig(solver="heuristic-batch"))
        scalar = PagingController(ServiceConfig(solver="heuristic-fast"))
        plan_batched = batched.run([request])[0].plan
        plan_scalar = scalar.run([request])[0].plan
        assert float(plan_batched.expected_paging).hex() == float(
            plan_scalar.expected_paging
        ).hex()
        assert plan_batched.order == plan_scalar.order
        assert plan_batched.group_sizes == plan_scalar.group_sizes


class TestQuantizationBound:
    def _bucket_neighbors(self, rng, step, devices, cells):
        """Two profiles guaranteed to share a step-quantized cache key.

        The first is snapped onto bucket centers; the second jitters by
        less than half a bucket, so ``rint`` maps both to the same key.
        """
        base = rng.random((devices, cells))
        base /= base.sum(axis=1, keepdims=True)
        centers = np.rint(base / step) * step
        jitter = rng.uniform(-step / 4.0, step / 4.0, size=base.shape)
        other = np.clip(centers + jitter, 0.0, 1.0)
        return centers, other

    def test_exact_solver_hit_is_within_the_bound(self):
        """Proof obligation: for an optimal solver, a quantized hit's
        expected paging on the *new* instance is within
        ``quantization_bound`` of a fresh optimal plan."""
        step = 1e-3
        devices, cells, rounds = 2, 6, 2
        rng = np.random.default_rng(404)
        config = ServiceConfig(
            solver="exact", quantization_step=step, batch_window=1
        )
        bound = quantization_bound(devices, cells, step)
        checked = 0
        for trial in range(25):
            base, other = self._bucket_neighbors(rng, step, devices, cells)
            key_a = plan_cache_key(base, rounds, None, "exact", step)
            key_b = plan_cache_key(other, rounds, None, "exact", step)
            if key_a != key_b:
                continue  # jitter crossed a bucket edge; skip the pair
            controller = PagingController(config)
            controller.run([PlanRequest("a", base, rounds)])
            hit = controller.submit(PlanRequest("a", other, rounds))
            assert hit.cache_hit
            fresh = solve_instance(
                "exact",
                request_instance(hit.request),
                max_rounds=rounds,
            )
            cached_on_new = expected_paging_float(
                request_instance(hit.request), hit.plan.strategy()
            )
            assert cached_on_new <= float(fresh.expected_paging) + bound + 1e-9
            checked += 1
        assert checked >= 10  # the property must actually have been exercised

    def test_heuristic_hit_is_within_the_bound_empirically(self):
        """For the heuristic the bound is a validated property, not a
        theorem (the optimality-transfer step needs optimal plans)."""
        step = 1e-4
        devices, cells, rounds = 3, 10, 3
        rng = np.random.default_rng(505)
        bound = quantization_bound(devices, cells, step)
        config = ServiceConfig(quantization_step=step, batch_window=1)
        checked = 0
        for trial in range(25):
            base, other = self._bucket_neighbors(rng, step, devices, cells)
            key_a = plan_cache_key(base, rounds, None, "heuristic-batch", step)
            key_b = plan_cache_key(other, rounds, None, "heuristic-batch", step)
            if key_a != key_b:
                continue
            controller = PagingController(config)
            controller.run([PlanRequest("a", base, rounds)])
            hit = controller.submit(PlanRequest("a", other, rounds))
            assert hit.cache_hit
            fresh = solve_instance(
                "heuristic-fast",
                request_instance(hit.request),
                max_rounds=rounds,
            )
            cached_on_new = expected_paging_float(
                request_instance(hit.request), hit.plan.strategy()
            )
            assert cached_on_new <= float(fresh.expected_paging) + bound + 1e-9
            checked += 1
        assert checked >= 10


class TestStatsAndObservability:
    def test_stats_snapshot(self):
        controller = PagingController(ServiceConfig(num_shards=2))
        request = PlanRequest("la-1", _profile(0), 3)
        controller.run([request])
        controller.submit(request)
        stats = controller.stats()
        assert stats["schema"] == "repro-service/1"
        assert stats["requests"] == 2
        assert stats["cache_hits"] == 1
        assert stats["hit_rate"] == pytest.approx(0.5)
        assert stats["batches"] == 1
        assert stats["planned"] == 1
        assert stats["pending"] == 0
        assert stats["cache"]["size"] == 1
        assert sum(stats["shard_requests"]) == 2

    def test_service_events_are_emitted_under_a_tracer(self):
        sink = MemorySink()
        with use_tracer(Tracer(sink)):
            controller = PagingController(ServiceConfig(max_pending=1, batch_window=100))
            request = PlanRequest("la-1", _profile(0), 3)
            controller.submit(request)
            controller.submit(PlanRequest("la-1", _profile(1), 3))  # shed
            controller.flush()
            controller.submit(request)  # hit
        by_kind = {}
        for event in sink.events:
            by_kind.setdefault(event["event"], []).append(event)
        counters = {event["name"]: event["value"] for event in by_kind["counter"]}
        assert counters["service.requests"] == 3
        assert counters["service.cache_hit"] == 1
        assert counters["service.shed"] == 1
        histograms = {event["name"] for event in by_kind["histogram"]}
        assert "service.batch_size" in histograms
        spans = {event["name"] for event in by_kind["span"]}
        assert "service.batch_flush" in spans

    def test_events_are_silent_without_a_tracer(self):
        # the hot path must stay cheap and side-effect-free when untraced
        controller = PagingController(ServiceConfig())
        tickets = controller.run([PlanRequest("la-1", _profile(0), 3)])
        assert tickets[0].status == "ok"


class TestConfigValidation:
    @pytest.mark.parametrize(
        "overrides",
        [
            {"num_shards": 0},
            {"cache_size": 0},
            {"quantization_step": -0.5},
            {"batch_window": 0},
            {"batch_timeout_s": -1.0},
            {"max_pending": 0},
        ],
    )
    def test_invalid_config_rejected(self, overrides):
        with pytest.raises(ValueError):
            ServiceConfig(**overrides)

    def test_unknown_solver_rejected_at_construction(self):
        from repro.solvers import UnknownSolverError

        with pytest.raises(UnknownSolverError):
            PagingController(ServiceConfig(solver="no-such-solver"))


class TestLruIntegration:
    def test_cache_eviction_round_trips_through_the_controller(self):
        controller = PagingController(
            ServiceConfig(num_shards=1, cache_size=2, batch_window=1)
        )
        requests = [PlanRequest("la-1", _profile(seed), 3) for seed in range(3)]
        for request in requests:
            controller.submit(request)
        # capacity 2: the first profile was evicted, the last two are hot
        refetch = controller.submit(requests[0])
        assert refetch.status == "ok"
        assert not refetch.cache_hit  # evicted -> re-planned, not served
        assert controller.submit(requests[2]).cache_hit
