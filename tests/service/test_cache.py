"""Unit tests for the quantized LRU plan cache (``repro.service.cache``)."""

import numpy as np
import pytest

from repro.service import (
    PlanCache,
    plan_cache_key,
    quantization_bound,
    quantize_profile,
)


def _matrix(seed=0, devices=2, cells=5):
    rng = np.random.default_rng(seed)
    matrix = rng.random((devices, cells))
    matrix /= matrix.sum(axis=1, keepdims=True)
    return matrix


class TestQuantizeProfile:
    def test_step_zero_is_the_exact_byte_image(self):
        matrix = _matrix()
        assert quantize_profile(matrix, 0.0) == matrix.tobytes()

    def test_step_zero_distinguishes_one_ulp(self):
        matrix = _matrix()
        nudged = matrix.copy()
        nudged[0, 0] = np.nextafter(nudged[0, 0], 1.0)
        assert quantize_profile(matrix, 0.0) != quantize_profile(nudged, 0.0)

    def test_positive_step_merges_nearby_profiles(self):
        matrix = _matrix()
        nudged = matrix + 1e-6
        assert quantize_profile(matrix, 1e-3) == quantize_profile(nudged, 1e-3)

    def test_positive_step_separates_distant_profiles(self):
        matrix = _matrix()
        shifted = matrix.copy()
        shifted[0, 0] += 0.25
        assert quantize_profile(matrix, 1e-3) != quantize_profile(shifted, 1e-3)

    def test_negative_step_rejected(self):
        with pytest.raises(ValueError):
            quantize_profile(_matrix(), -0.1)


class TestPlanCacheKey:
    def test_key_captures_every_plan_determinant(self):
        matrix = _matrix()
        base = plan_cache_key(matrix, 3, None, "heuristic-batch", 0.0)
        assert plan_cache_key(matrix, 3, None, "heuristic-batch", 0.0) == base
        assert plan_cache_key(matrix, 2, None, "heuristic-batch", 0.0) != base
        assert plan_cache_key(matrix, 3, 2, "heuristic-batch", 0.0) != base
        assert plan_cache_key(matrix, 3, None, "exact", 0.0) != base
        other = plan_cache_key(_matrix(seed=1), 3, None, "heuristic-batch", 0.0)
        assert other != base

    def test_non_matrix_input_rejected(self):
        with pytest.raises(ValueError):
            plan_cache_key(np.ones(5), 2, None, "heuristic", 0.0)


class TestQuantizationBound:
    def test_formula(self):
        assert quantization_bound(3, 10, 1e-3) == pytest.approx(
            2.0 * 3 * 10 * 10 * 1e-3
        )

    def test_step_zero_means_zero_slack(self):
        assert quantization_bound(4, 100, 0.0) == pytest.approx(0.0)

    def test_monotone_in_every_argument(self):
        base = quantization_bound(3, 10, 1e-3)
        assert quantization_bound(4, 10, 1e-3) > base
        assert quantization_bound(3, 11, 1e-3) > base
        assert quantization_bound(3, 10, 2e-3) > base


class TestPlanCache:
    def _keys(self, count):
        return [
            plan_cache_key(_matrix(seed=seed), 3, None, "heuristic", 0.0)
            for seed in range(count)
        ]

    def test_get_put_roundtrip(self):
        cache = PlanCache(4)
        key = self._keys(1)[0]
        assert cache.get(key) is None
        cache.put(key, "plan")
        assert cache.get(key) == "plan"
        assert key in cache
        assert len(cache) == 1

    def test_lru_eviction_order(self):
        cache = PlanCache(3)
        k0, k1, k2, k3 = self._keys(4)
        cache.put(k0, "p0")
        cache.put(k1, "p1")
        cache.put(k2, "p2")
        # touch k0 so k1 becomes the least recently used
        assert cache.get(k0) == "p0"
        cache.put(k3, "p3")
        assert k1 not in cache
        assert cache.keys() == (k2, k0, k3)
        assert cache.evictions == 1

    def test_put_refreshes_recency_and_value(self):
        cache = PlanCache(2)
        k0, k1, k2 = self._keys(3)
        cache.put(k0, "p0")
        cache.put(k1, "p1")
        cache.put(k0, "p0-new")
        cache.put(k2, "p2")
        assert k1 not in cache
        assert cache.get(k0) == "p0-new"

    def test_counters(self):
        cache = PlanCache(2)
        k0, k1, k2 = self._keys(3)
        cache.get(k0)
        cache.put(k0, "p0")
        cache.get(k0)
        cache.put(k1, "p1")
        cache.put(k2, "p2")
        counters = cache.counters()
        assert counters == {"size": 2, "hits": 1, "misses": 1, "evictions": 1}

    def test_clear_preserves_counters(self):
        cache = PlanCache(2)
        key = self._keys(1)[0]
        cache.put(key, "p")
        cache.get(key)
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 1

    def test_maxsize_validated(self):
        with pytest.raises(ValueError):
            PlanCache(0)
