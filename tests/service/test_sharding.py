"""Shard-map determinism tests (``repro.service.sharding``)."""

import pytest

from repro.service import ShardMap, shard_assignments, shard_for_area, shard_loads


class TestShardForArea:
    def test_pinned_assignments(self):
        # Frozen expectations: the map must never drift across releases,
        # processes, or platforms (it is BLAKE2b, not the salted built-in
        # hash), because replicas route areas independently.
        assert shard_for_area("area-0", 4) == 3
        assert shard_for_area("area-1", 4) == 2
        assert shard_for_area("la-1", 4) == 2
        assert shard_for_area(7, 4) == 2

    def test_range_and_determinism(self):
        for num_shards in (1, 2, 3, 7, 16):
            for area in ("a", "b", "area-42", 0, 123, ("la", 9)):
                shard = shard_for_area(area, num_shards)
                assert 0 <= shard < num_shards
                assert shard_for_area(area, num_shards) == shard

    def test_int_and_repr_string_agree(self):
        assert shard_for_area(7, 8) == shard_for_area("7", 8)

    def test_invalid_shard_count(self):
        with pytest.raises(ValueError):
            shard_for_area("a", 0)

    def test_loads_are_roughly_balanced(self):
        areas = [f"area-{index}" for index in range(4000)]
        loads = shard_loads(areas, 4)
        assert sum(loads) == len(areas)
        for load in loads:
            assert 800 < load < 1200

    def test_assignments_match_pointwise(self):
        areas = ["x", "y", 3]
        mapping = shard_assignments(areas, 5)
        for area in areas:
            assert mapping[area] == shard_for_area(area, 5)


class TestShardMap:
    def test_matches_pure_function_and_memoizes(self):
        shard_map = ShardMap(4)
        for area in ("a", "b", "a", 17):
            assert shard_map(area) == shard_for_area(area, 4)
        assert shard_map.known_areas() == ("a", "b", 17)

    def test_invalid_shard_count(self):
        with pytest.raises(ValueError):
            ShardMap(0)
