"""Unit tests for the command-line interface."""

import argparse
import json
import re
from pathlib import Path

import pytest

from repro.cli import COMMAND_SUMMARY, _build_parser, main


@pytest.fixture
def instance_file(tmp_path):
    path = tmp_path / "instance.json"
    payload = {
        "probabilities": [[0.5, 0.3, 0.1, 0.1], [0.1, 0.2, 0.3, 0.4]],
        "max_rounds": 2,
    }
    path.write_text(json.dumps(payload))
    return str(path)


class TestPlan:
    def test_heuristic_plan(self, instance_file, capsys):
        assert main(["plan", instance_file]) == 0
        out = capsys.readouterr().out
        assert "round 1: page cells" in out
        assert "e/(e-1) heuristic expected paging" in out

    def test_exact_plan(self, instance_file, capsys):
        assert main(["plan", instance_file, "--solver", "exact"]) == 0
        assert "exact optimal" in capsys.readouterr().out

    def test_adaptive_value(self, instance_file, capsys):
        assert main(["plan", instance_file, "--solver", "adaptive"]) == 0
        assert "adaptive replanning" in capsys.readouterr().out

    def test_round_override(self, instance_file, capsys):
        assert main(["plan", instance_file, "--rounds", "3"]) == 0
        assert "d=3" in capsys.readouterr().out

    def test_bandwidth_cap(self, instance_file, capsys):
        assert main(["plan", instance_file, "--rounds", "2", "--bandwidth", "2"]) == 0
        out = capsys.readouterr().out
        for line in out.splitlines():
            if "page cells" in line:
                cells = line.split("page cells")[1]
                assert cells.count(",") <= 1  # at most two cells per round

    def test_output_writes_strategy(self, instance_file, tmp_path, capsys):
        out_path = tmp_path / "plan.json"
        assert main(["plan", instance_file, "--output", str(out_path)]) == 0
        from repro.core import Strategy
        from repro.core.serialization import load

        restored = load(str(out_path))
        assert isinstance(restored, Strategy)
        assert restored.num_cells == 4

    def test_fast_planner_flag(self, instance_file, capsys):
        assert main(["plan", instance_file, "--fast"]) == 0
        assert "heuristic expected paging" in capsys.readouterr().out

    def test_missing_probabilities_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{}")
        with pytest.raises(SystemExit, match="probabilities"):
            main(["plan", str(path)])


class TestGadget:
    def test_yes_instance(self, capsys):
        assert main(["gadget", "1,1,2"]) == 0
        out = capsys.readouterr().out
        assert "EP == LB" in out
        assert "True" in out

    def test_no_instance(self, capsys):
        assert main(["gadget", "1,1,3"]) == 0
        out = capsys.readouterr().out
        assert "quasipartition witness: None" in out
        assert "False" in out

    def test_bad_sizes_rejected(self):
        with pytest.raises(SystemExit, match="parse"):
            main(["gadget", "1,banana,3"])


class TestExperiments:
    def test_list(self, capsys):
        assert main(["experiments", "--list"]) == 0
        out = capsys.readouterr().out
        assert "E2" in out
        assert "E20" in out

    def test_run_single(self, capsys):
        assert main(["experiments", "E2"]) == 0
        out = capsys.readouterr().out
        assert "E2:" in out
        assert "317" in out or "6.4694" in out

    def test_unknown_id(self):
        with pytest.raises(KeyError):
            main(["experiments", "E999"])


class TestRender:
    def test_location_area_map(self, capsys):
        assert main(["render", "--radius", "2", "--areas", "3"]) == 0
        out = capsys.readouterr().out
        assert "19 cells" in out
        assert "location-area id" in out

    def test_strategy_overlay(self, tmp_path, capsys):
        import json

        import numpy as np

        rng = np.random.default_rng(0)
        matrix = rng.dirichlet(np.ones(19), size=2).tolist()
        path = tmp_path / "inst.json"
        path.write_text(json.dumps({"probabilities": matrix, "max_rounds": 3}))
        assert main(["render", "--radius", "2", "--plan", str(path)]) == 0
        out = capsys.readouterr().out
        assert "paging round" in out
        assert "expected paging" in out

    def test_cell_count_mismatch_rejected(self, instance_file):
        with pytest.raises(SystemExit, match="cells"):
            main(["render", "--radius", "2", "--plan", instance_file])


class TestTrace:
    def test_global_flag_writes_jsonl(self, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        assert main(["--trace", str(path), "experiments", "E2"]) == 0
        captured = capsys.readouterr()
        assert "E2:" in captured.out
        assert f"trace written to {path}" in captured.err
        events = [json.loads(line) for line in path.read_text().splitlines()]
        assert events[0]["event"] == "meta"
        assert events[0]["schema"] == "repro-trace/1"
        assert any(
            event.get("name") == "experiments.E2"
            for event in events
            if event["event"] == "span"
        )

    def test_subcommand_renders_report(self, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        assert main(["--trace", str(path), "experiments", "E2"]) == 0
        capsys.readouterr()
        assert main(["trace", str(path)]) == 0
        out = capsys.readouterr().out
        assert "trace summary" in out
        assert "experiments.E2" in out

    def test_subcommand_json_output(self, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        assert main(["--trace", str(path), "experiments", "E2"]) == 0
        capsys.readouterr()
        assert main(["trace", str(path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro-trace/1"
        assert payload["spans"]["experiments.E2"]["count"] == 1

    def test_missing_file_fails_cleanly(self, tmp_path, capsys):
        assert main(["trace", str(tmp_path / "nope.jsonl")]) == 2
        assert "cannot read" in capsys.readouterr().err


class TestServeBench:
    _SMALL = [
        "serve-bench", "--requests", "400", "--areas", "6", "--cells", "10",
        "--profiles-per-area", "3", "--hot-fraction", "0.9", "--seed", "11",
    ]

    def test_text_report(self, capsys):
        assert main(self._SMALL) == 0
        out = capsys.readouterr().out
        assert "400 requests over 6 areas" in out
        assert "cold:" in out
        assert "warm:" in out
        assert "hit-rate" in out

    def test_json_report(self, capsys):
        assert main(self._SMALL + ["--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro-serve-bench/1"
        assert payload["warm"]["hit_rate"] == 1.0
        assert payload["cold"]["throughput_rps"] > 0

    def test_invalid_workload_fails_cleanly(self):
        with pytest.raises(SystemExit, match="hot_fraction"):
            main(["serve-bench", "--hot-fraction", "2.0"])


class TestCommandSurface:
    """README table, --help epilog, and the parser must agree."""

    def _parser_commands(self):
        parser = _build_parser()
        action = next(
            a for a in parser._actions if isinstance(a, argparse._SubParsersAction)
        )
        return list(action.choices)

    def test_summary_matches_parser(self):
        assert self._parser_commands() == list(COMMAND_SUMMARY)

    def test_summary_matches_readme_table(self):
        readme = (Path(__file__).resolve().parent.parent / "README.md").read_text()
        table_commands = re.findall(r"^\| `repro ([\w-]+)` \|", readme, re.MULTILINE)
        assert table_commands == list(COMMAND_SUMMARY)

    def test_help_epilog_lists_every_command(self):
        help_text = _build_parser().format_help()
        for name, summary in COMMAND_SUMMARY.items():
            assert f"repro {name}" in help_text
            assert summary in help_text
        assert "--trace PATH" in help_text


class TestSimulate:
    def test_small_run(self, capsys):
        assert (
            main(
                [
                    "simulate",
                    "--radius",
                    "2",
                    "--devices",
                    "3",
                    "--horizon",
                    "80",
                    "--seed",
                    "7",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "cells_paged" in out
        assert "19 cells" in out
