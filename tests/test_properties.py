"""Property-based tests (hypothesis) on the core invariants.

These exercise the algebraic identities the library rests on — Lemma 2.1's
telescoping, DP optimality over its family, stopping-rule monotonicity, the
subset-sum witnesses — over randomly generated instances and strategies.
"""

import itertools
from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    PagingInstance,
    Strategy,
    by_expected_devices,
    conference_call_heuristic,
    expected_paging,
    expected_paging_by_definition,
    expected_paging_signature,
    expected_paging_yellow,
    optimize_over_order,
    poisson_binomial_tail,
    simulate_paging,
    stopping_round_distribution,
)
from repro.hardness import subset_with_count_and_sum


# ----------------------------------------------------------------------
# Generators
# ----------------------------------------------------------------------
@st.composite
def exact_instances(draw, max_devices=3, max_cells=6):
    """Random Fraction instances with positive rows summing to 1."""
    m = draw(st.integers(1, max_devices))
    c = draw(st.integers(2, max_cells))
    d = draw(st.integers(1, c))
    rows = []
    for _ in range(m):
        weights = draw(
            st.lists(st.integers(1, 20), min_size=c, max_size=c)
        )
        total = sum(weights)
        rows.append([Fraction(w, total) for w in weights])
    return PagingInstance(rows, max_rounds=d)


@st.composite
def instances_with_strategies(draw):
    """An instance plus a random valid strategy over its cells."""
    instance = draw(exact_instances())
    c = instance.num_cells
    t = draw(st.integers(1, c))
    # Random surjection onto t rounds: assign the first t cells to distinct
    # rounds, the rest freely.
    labels = list(range(t)) + [
        draw(st.integers(0, t - 1)) for _ in range(c - t)
    ]
    permutation = draw(st.permutations(list(range(c))))
    assignment = [0] * c
    for position, cell in enumerate(permutation):
        assignment[cell] = labels[position]
    return instance, Strategy.from_assignment(assignment)


# ----------------------------------------------------------------------
# Lemma 2.1 identities
# ----------------------------------------------------------------------
@given(instances_with_strategies())
@settings(max_examples=60, deadline=None)
def test_telescoped_ep_equals_definition(data):
    instance, strategy = data
    assert expected_paging(instance, strategy) == expected_paging_by_definition(
        instance, strategy
    )


@given(instances_with_strategies())
@settings(max_examples=60, deadline=None)
def test_ep_within_bounds(data):
    instance, strategy = data
    value = expected_paging(instance, strategy)
    assert strategy.group_sizes()[0] <= value <= instance.num_cells


@given(instances_with_strategies())
@settings(max_examples=60, deadline=None)
def test_stopping_distribution_is_a_distribution(data):
    instance, strategy = data
    probabilities = stopping_round_distribution(instance, strategy)
    assert sum(probabilities) == 1
    assert all(p >= 0 for p in probabilities)


@given(instances_with_strategies())
@settings(max_examples=40, deadline=None)
def test_ep_is_expectation_of_simulation(data):
    """EP equals the exact expectation of simulate_paging over all outcomes."""
    instance, strategy = data
    total = Fraction(0)
    cells = range(instance.num_cells)
    for locations in itertools.product(cells, repeat=instance.num_devices):
        probability = Fraction(1)
        for device, cell in enumerate(locations):
            probability *= Fraction(instance.probability(device, cell))
        if probability == 0:
            continue
        paged, _rounds = simulate_paging(instance, strategy, locations)
        total += probability * paged
    assert total == expected_paging(instance, strategy)


# ----------------------------------------------------------------------
# DP and heuristic invariants
# ----------------------------------------------------------------------
@given(exact_instances())
@settings(max_examples=40, deadline=None)
def test_dp_value_is_minimum_over_its_family(instance):
    order = by_expected_devices(instance)
    result = optimize_over_order(instance, order)
    d = instance.max_rounds
    c = instance.num_cells
    for cuts in itertools.combinations(range(1, c), d - 1):
        bounds = (0,) + cuts + (c,)
        sizes = tuple(bounds[i + 1] - bounds[i] for i in range(d))
        strategy = Strategy.from_order_and_sizes(order, sizes)
        assert result.expected_paging <= expected_paging(instance, strategy)


@given(exact_instances())
@settings(max_examples=40, deadline=None)
def test_heuristic_value_matches_its_strategy(instance):
    result = conference_call_heuristic(instance)
    assert result.expected_paging == expected_paging(instance, result.strategy)


@given(exact_instances(max_devices=2, max_cells=5))
@settings(max_examples=25, deadline=None)
def test_heuristic_within_proven_factor(instance):
    from repro.core import optimal_strategy

    heuristic = conference_call_heuristic(instance)
    optimum = optimal_strategy(instance)
    ratio = Fraction(heuristic.expected_paging) / Fraction(optimum.expected_paging)
    assert float(ratio) <= 1.5819767068693265 + 1e-12


# ----------------------------------------------------------------------
# Variant stopping rules
# ----------------------------------------------------------------------
@given(instances_with_strategies())
@settings(max_examples=40, deadline=None)
def test_yellow_cheaper_than_conference(data):
    """Stopping earlier (any single hit) can never page more cells."""
    instance, strategy = data
    assert expected_paging_yellow(instance, strategy) <= expected_paging(
        instance, strategy
    )


@given(instances_with_strategies(), st.integers(1, 3))
@settings(max_examples=40, deadline=None)
def test_signature_monotone_in_quorum(data, quorum):
    instance, strategy = data
    k = min(quorum, instance.num_devices)
    lower = expected_paging_signature(instance, strategy, k)
    full = expected_paging_signature(instance, strategy, instance.num_devices)
    assert lower <= full


@given(
    st.lists(
        st.fractions(min_value=0, max_value=1, max_denominator=20),
        min_size=1,
        max_size=5,
    ),
    st.integers(0, 6),
)
@settings(max_examples=80, deadline=None)
def test_poisson_binomial_tail_properties(probabilities, quorum):
    tail = poisson_binomial_tail(probabilities, quorum)
    assert 0 <= tail <= 1
    if quorum == 0:
        assert tail == 1
    if quorum > len(probabilities):
        assert tail == 0
    if quorum >= 1:
        next_tail = poisson_binomial_tail(probabilities, quorum + 1)
        assert next_tail <= tail


# ----------------------------------------------------------------------
# Exact variant solvers (tiny sizes)
# ----------------------------------------------------------------------
@given(exact_instances(max_devices=3, max_cells=4))
@settings(max_examples=20, deadline=None)
def test_variant_optima_are_ordered(instance):
    """yellow* <= signature*(k) <= conference* for every k, exactly."""
    from repro.core import optimal_signature, optimal_strategy, optimal_yellow_pages

    m = instance.num_devices
    yellow = optimal_yellow_pages(instance).expected_paging
    conference = optimal_strategy(instance).expected_paging
    previous = yellow
    for quorum in range(1, m + 1):
        signature = optimal_signature(instance, quorum).expected_paging
        assert previous <= signature
        previous = signature
    assert previous == conference


@given(exact_instances(max_devices=2, max_cells=4))
@settings(max_examples=20, deadline=None)
def test_adaptive_optimum_lower_bounds_everything(instance):
    from repro.core import (
        adaptive_expected_paging,
        optimal_adaptive_expected_paging,
        optimal_strategy,
    )

    adaptive_opt = optimal_adaptive_expected_paging(instance).expected_paging
    assert adaptive_opt <= optimal_strategy(instance).expected_paging
    assert adaptive_opt <= adaptive_expected_paging(instance)


# ----------------------------------------------------------------------
# Weighted costs
# ----------------------------------------------------------------------
@given(instances_with_strategies(), st.lists(st.integers(1, 9), min_size=8, max_size=8))
@settings(max_examples=50, deadline=None)
def test_weighted_ep_reduces_and_scales(data, raw_costs):
    """Unit costs recover Lemma 2.1; scaling costs scales the expectation."""
    from repro.core import expected_paging, weighted_expected_paging

    instance, strategy = data
    c = instance.num_cells
    unit = weighted_expected_paging(instance, strategy, [Fraction(1)] * c)
    assert unit == expected_paging(instance, strategy)
    costs = [Fraction(v) for v in raw_costs[:c]]
    base = weighted_expected_paging(instance, strategy, costs)
    doubled = weighted_expected_paging(
        instance, strategy, [2 * cost for cost in costs]
    )
    assert doubled == 2 * base


@given(exact_instances(max_devices=2, max_cells=5))
@settings(max_examples=30, deadline=None)
def test_weighted_cut_dp_is_minimum_over_cuts(instance):
    from repro.core import Strategy, weighted_expected_paging
    from repro.core.weighted import by_density, optimize_cuts_weighted

    costs = [Fraction(j + 1) for j in range(instance.num_cells)]
    order = by_density(instance, costs)
    finds = instance.prefix_find_probabilities(order)
    prefix_costs = [Fraction(0)]
    for cell in order:
        prefix_costs.append(prefix_costs[-1] + costs[cell])
    d = instance.max_rounds
    sizes, value = optimize_cuts_weighted(finds, prefix_costs, d)
    for cuts in itertools.combinations(range(1, instance.num_cells), d - 1):
        bounds = (0,) + cuts + (instance.num_cells,)
        manual_sizes = tuple(bounds[i + 1] - bounds[i] for i in range(d))
        strategy = Strategy.from_order_and_sizes(order, manual_sizes)
        assert value <= weighted_expected_paging(instance, strategy, costs)


# ----------------------------------------------------------------------
# Subset-sum DP
# ----------------------------------------------------------------------
@given(
    st.lists(st.integers(0, 12), min_size=1, max_size=8),
    st.integers(0, 8),
    st.integers(0, 40),
)
@settings(max_examples=100, deadline=None)
def test_subset_dp_sound_and_complete(values, count, target):
    sizes = [Fraction(v) for v in values]
    witness = subset_with_count_and_sum(sizes, count, Fraction(target))
    brute = any(
        sum(sizes[i] for i in combo) == target
        for combo in itertools.combinations(range(len(sizes)), count)
    ) if count <= len(sizes) else False
    assert (witness is not None) == brute
    if witness is not None:
        assert len(witness) == count
        assert len(set(witness)) == count
        assert sum(sizes[i] for i in witness) == target
