"""Checkpoint/resume, seed spawning, retries, and the serial-fallback warning."""

import json
import pickle

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.experiments import (
    CHECKPOINT_SCHEMA,
    run_experiments,
    spawn_task_seed,
)
from repro.experiments.runner import (
    EXPERIMENTS,
    _execute_with_retries,
    _task_filename,
)
from repro.experiments.tables import render_all
from repro.obs import MemorySink, Tracer, use_tracer

# A cheap subset that still exercises rng-seeded and deterministic tables.
SUBSET = ["E1", "E2", "E4", "E8"]


class TestSpawnTaskSeed:
    """Regression for the quadratic seed-spawn bug: the O(1) spelling must
    stay byte-identical to the legacy ``spawn(index + 1)[index]`` scheme."""

    @pytest.mark.parametrize("seed", [0, 1, 99, 2**31])
    @pytest.mark.parametrize("index", [0, 1, 7, 40])
    def test_matches_legacy_spawn(self, seed, index):
        legacy = np.random.SeedSequence(seed).spawn(index + 1)[index]
        direct = spawn_task_seed(seed, index)
        assert direct.spawn_key == legacy.spawn_key
        assert list(direct.generate_state(8)) == list(legacy.generate_state(8))

    def test_identical_generator_output(self):
        legacy = np.random.SeedSequence(42).spawn(6)[5]
        direct = spawn_task_seed(42, 5)
        assert np.array_equal(
            np.random.default_rng(legacy).random(16),
            np.random.default_rng(direct).random(16),
        )

    def test_children_are_distinct(self):
        states = {tuple(spawn_task_seed(7, i).generate_state(4)) for i in range(20)}
        assert len(states) == 20


class TestCheckpoint:
    def test_fresh_run_writes_manifest_and_tasks(self, tmp_path):
        directory = tmp_path / "ck"
        run_experiments(SUBSET, checkpoint_dir=str(directory))
        manifest = json.loads((directory / "manifest.json").read_text())
        assert manifest["schema"] == CHECKPOINT_SCHEMA
        assert manifest["names"] == SUBSET
        assert manifest["seed"] is None
        assert sorted(manifest["completed"]) == ["0", "1", "2", "3"]
        for index, name in enumerate(SUBSET):
            assert (directory / _task_filename(index, name)).exists()

    def test_resume_renders_byte_identical(self, tmp_path):
        baseline = render_all(run_experiments(SUBSET))
        directory = str(tmp_path / "ck")
        run_experiments(SUBSET, checkpoint_dir=directory)
        resumed = render_all(
            run_experiments(SUBSET, checkpoint_dir=directory, resume=True)
        )
        assert resumed == baseline

    def test_resume_after_partial_checkpoint(self, tmp_path):
        """Deleting task files simulates a crash mid-run; resume re-runs
        exactly the missing tasks and renders identically."""
        baseline = render_all(run_experiments(SUBSET))
        directory = tmp_path / "ck"
        run_experiments(SUBSET, checkpoint_dir=str(directory))
        (directory / _task_filename(1, "E2")).unlink()
        (directory / _task_filename(3, "E8")).unlink()
        resumed = render_all(
            run_experiments(SUBSET, checkpoint_dir=str(directory), resume=True)
        )
        assert resumed == baseline

    def test_resume_parallel_matches_serial(self, tmp_path):
        baseline = render_all(run_experiments(SUBSET))
        directory = tmp_path / "ck"
        run_experiments(SUBSET, checkpoint_dir=str(directory))
        (directory / _task_filename(0, "E1")).unlink()
        (directory / _task_filename(2, "E4")).unlink()
        resumed = render_all(
            run_experiments(
                SUBSET, jobs=2, checkpoint_dir=str(directory), resume=True
            )
        )
        assert resumed == baseline

    def test_resume_counts_resumed_tasks(self, tmp_path):
        directory = str(tmp_path / "ck")
        run_experiments(["E1", "E2"], checkpoint_dir=directory)
        sink = MemorySink()
        with use_tracer(Tracer(sink)):
            run_experiments(["E1", "E2"], checkpoint_dir=directory, resume=True)
        counts = {
            e["name"]: e["value"]
            for e in sink.events
            if e.get("event") == "counter"
        }
        assert counts.get("runner.tasks_resumed") == 2

    def test_resume_requires_checkpoint_dir(self):
        with pytest.raises(ValueError, match="checkpoint_dir"):
            run_experiments(["E1"], resume=True)

    def test_resume_without_manifest_errors(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="manifest"):
            run_experiments(
                ["E1"], checkpoint_dir=str(tmp_path / "empty"), resume=True
            )

    def test_resume_rejects_mismatched_selection(self, tmp_path):
        directory = str(tmp_path / "ck")
        run_experiments(["E1", "E2"], checkpoint_dir=directory)
        with pytest.raises(ValueError, match="selection or seed"):
            run_experiments(["E1", "E4"], checkpoint_dir=directory, resume=True)

    def test_resume_rejects_mismatched_seed(self, tmp_path):
        directory = str(tmp_path / "ck")
        run_experiments(["E1"], checkpoint_dir=directory, seed=1)
        with pytest.raises(ValueError, match="selection or seed"):
            run_experiments(["E1"], checkpoint_dir=directory, resume=True, seed=2)

    def test_resume_rejects_wrong_schema(self, tmp_path):
        directory = tmp_path / "ck"
        directory.mkdir()
        (directory / "manifest.json").write_text(
            json.dumps({"schema": "elsewhere/9", "names": ["E1"], "seed": None})
        )
        with pytest.raises(ValueError, match="schema"):
            run_experiments(["E1"], checkpoint_dir=str(directory), resume=True)

    def test_checkpointed_tables_round_trip_pickle(self, tmp_path):
        directory = tmp_path / "ck"
        tables = run_experiments(["E1"], checkpoint_dir=str(directory))
        with open(directory / _task_filename(0, "E1"), "rb") as handle:
            stored = pickle.load(handle)
        assert render_all([stored]) == render_all(tables)

    def test_rejects_negative_task_retries(self):
        with pytest.raises(ValueError, match="task_retries"):
            run_experiments(["E1"], task_retries=-1)


class TestInterruptedRunResumes:
    def test_failure_checkpoints_predecessors_then_resumes(
        self, tmp_path, monkeypatch
    ):
        """A task that dies mid-run leaves earlier tables checkpointed; once
        the cause is fixed, --resume completes without re-running them."""
        baseline = render_all(run_experiments(["E1", "E2"]))
        directory = tmp_path / "ck"

        def explode(*args, **kwargs):
            raise OSError("worker lost")

        monkeypatch.setitem(EXPERIMENTS, "E2", explode)
        with pytest.raises(OSError):
            run_experiments(
                ["E1", "E2"], checkpoint_dir=str(directory), task_retries=0
            )
        manifest = json.loads((directory / "manifest.json").read_text())
        assert list(manifest["completed"].values()) == [_task_filename(0, "E1")]

        monkeypatch.undo()
        resumed = render_all(
            run_experiments(["E1", "E2"], checkpoint_dir=str(directory), resume=True)
        )
        assert resumed == baseline


class TestTaskRetries:
    def test_execute_with_retries_recovers_flaky_task(self, monkeypatch):
        calls = {"n": 0}
        real = EXPERIMENTS["E1"]

        def flaky(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] == 1:
                raise OSError("transient")
            return real(*args, **kwargs)

        monkeypatch.setitem(EXPERIMENTS, "E1", flaky)
        sink = MemorySink()
        with use_tracer(Tracer(sink)):
            table = _execute_with_retries(("E1", None, 0, None), 1)
        assert render_all([table]) == render_all([real()])
        counts = {
            e["name"]: e["value"]
            for e in sink.events
            if e.get("event") == "counter"
        }
        assert counts.get("runner.task_retries") == 1

    def test_zero_retries_propagates_the_error(self, monkeypatch):
        def explode(*args, **kwargs):
            raise OSError("fatal")

        monkeypatch.setitem(EXPERIMENTS, "E1", explode)
        with pytest.raises(OSError, match="fatal"):
            _execute_with_retries(("E1", None, 0, None), 0)

    def test_serial_run_retries_flaky_experiment(self, monkeypatch):
        baseline = render_all(run_experiments(["E1"]))
        calls = {"n": 0}
        real = EXPERIMENTS["E1"]

        def flaky(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] == 1:
                raise OSError("transient")
            return real(*args, **kwargs)

        monkeypatch.setitem(EXPERIMENTS, "E1", flaky)
        assert render_all(run_experiments(["E1"], task_retries=1)) == baseline


class TestSerialFallback:
    def test_pool_failure_warns_and_still_produces_tables(self, monkeypatch):
        baseline = render_all(run_experiments(SUBSET))

        class NoPool:
            def __init__(self, *args, **kwargs):
                raise NotImplementedError("no process pool here")

        import concurrent.futures

        monkeypatch.setattr(
            concurrent.futures, "ProcessPoolExecutor", NoPool
        )
        sink = MemorySink()
        with use_tracer(Tracer(sink)):
            with pytest.warns(RuntimeWarning, match="falling back to serial"):
                tables = run_experiments(SUBSET, jobs=4)
        assert render_all(tables) == baseline
        counts = {
            e["name"]: e["value"]
            for e in sink.events
            if e.get("event") == "counter"
        }
        assert counts.get("runner.serial_fallback") == 1

    def test_healthy_pool_does_not_warn(self):
        import warnings as warnings_module

        with warnings_module.catch_warnings():
            warnings_module.simplefilter("error", RuntimeWarning)
            run_experiments(["E1", "E2"], jobs=2)


class TestCliCheckpointFlags:
    def test_cli_resume_matches_fresh_run(self, tmp_path, capsys):
        directory = str(tmp_path / "ck")
        assert cli_main(["experiments", "E1", "E2", "--checkpoint", directory]) == 0
        fresh = capsys.readouterr().out
        assert (
            cli_main(
                ["experiments", "E1", "E2", "--checkpoint", directory, "--resume"]
            )
            == 0
        )
        assert capsys.readouterr().out == fresh

    def test_cli_resume_requires_checkpoint(self):
        with pytest.raises(SystemExit, match="--checkpoint"):
            cli_main(["experiments", "E1", "--resume"])
