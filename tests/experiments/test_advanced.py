"""Behavioral tests for the advanced experiments (E19, E20)."""

import numpy as np
import pytest

from repro.experiments import (
    run_e19_adaptivity_gap,
    run_e20_imperfect_detection,
    run_e23_area_dimensioning,
    run_e24_correlation_sensitivity,
)


class TestE19:
    def test_gap_bounds(self):
        table = run_e19_adaptivity_gap(
            families=("dirichlet",),
            trials=4,
            num_cells=6,
            rng=np.random.default_rng(19),
        )
        row = table.as_dicts()[0]
        assert row["mean_gap"] >= 1.0 - 1e-9
        assert row["max_gap"] >= row["mean_gap"] - 1e-9
        assert row["mean_adaptive_opt"] <= row["mean_oblivious_opt"] + 1e-9
        # The replanning heuristic stays close to the adaptive optimum.
        assert row["heuristic_vs_adaptive_opt"] < 1.2


class TestE23:
    def test_trade_off_endpoints(self):
        table = run_e23_area_dimensioning(
            area_counts=(1, 8), call_rates=(0.05,), radius=2, horizon=150
        )
        rows = table.as_dicts()
        one_area = next(row for row in rows if row["areas"] == 1)
        fine = next(row for row in rows if row["areas"] == 8)
        assert one_area["reports"] == 0
        assert fine["reports"] > 0
        for row in rows:
            assert row["heuristic_total"] <= row["blanket_total"] + 1e-9


class TestE24:
    def test_independence_errs_safe(self):
        table = run_e24_correlation_sensitivity(
            cohesion_levels=(0.0, 0.7),
            trials=5,
            num_cells=8,
            rng=np.random.default_rng(24),
        )
        rows = table.as_dicts()
        assert rows[0]["true_over_believed"] == pytest.approx(1.0, abs=1e-9)
        assert rows[1]["true_over_believed"] < 1.0


class TestE20:
    def test_costs_grow_as_detection_degrades(self):
        table = run_e20_imperfect_detection(
            detection_levels=(1.0, 0.7, 0.5),
            trials=1_500,
            rng=np.random.default_rng(20),
        )
        closed = table.column("single_closed_form")
        for i in range(len(closed) - 1):
            assert closed[i] < closed[i + 1]

    def test_closed_form_matches_simulation(self):
        table = run_e20_imperfect_detection(
            detection_levels=(0.8,), trials=4_000, rng=np.random.default_rng(21)
        )
        row = table.as_dicts()[0]
        assert row["single_monte_carlo"] == pytest.approx(
            row["single_closed_form"], rel=0.08
        )

    def test_heuristic_beats_blanket_under_collisions(self):
        table = run_e20_imperfect_detection(
            detection_levels=(0.9,), trials=2_500, rng=np.random.default_rng(22)
        )
        row = table.as_dicts()[0]
        assert row["multi_heuristic_mc"] < row["multi_blanket_mc"]
