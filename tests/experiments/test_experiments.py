"""Behavioral tests for every experiment: shapes plus headline assertions.

These are reduced-size runs of the same functions the benchmarks invoke;
each test asserts the *paper-facing* property the experiment demonstrates.
"""

import math

import numpy as np
import pytest

from repro.experiments import (
    EXPERIMENTS,
    run_e01_uniform_single_user,
    run_e02_lower_bound,
    run_e03_ratio_sweep,
    run_e04_lemma31,
    run_e05_lemma34,
    run_e06_reduction_general,
    run_e06_reduction_m2d2,
    run_e08_single_user_optimal,
    run_e09_delay_tradeoff,
    run_e10_adaptive,
    run_e11_signature_sweep,
    run_e11_yellow_pages,
    run_e12_bandwidth,
    run_e13_cellnet,
    run_e13_reporting_tradeoff,
    run_e14_quasipartition2,
    run_e15_clustered,
    run_e16_four_thirds,
    run_e17_lifting,
    run_e18_qap,
)

E_FACTOR = math.e / (math.e - 1.0)


class TestPaperClaims:
    def test_e01_closed_form_matches(self):
        table = run_e01_uniform_single_user(cell_counts=(4, 8), round_counts=(1, 2, 4))
        for row in table.as_dicts():
            assert row["optimal_ep"] == pytest.approx(row["closed_form"])
        d2 = [row for row in table.as_dicts() if row["d"] == 2]
        for row in d2:
            assert row["optimal_ep"] == pytest.approx(0.75 * row["c"])

    def test_e02_reproduces_320_317(self):
        table = run_e02_lower_bound()
        exact_row = table.as_dicts()[0]
        assert exact_row["optimal_ep"] == pytest.approx(317 / 49)
        assert exact_row["heuristic_ep"] == pytest.approx(320 / 49)
        assert exact_row["ratio"] == pytest.approx(320 / 317)

    def test_e04_lemma31_holds(self):
        table = run_e04_lemma31(cell_counts=(3, 9))
        assert all(value == "True" for value in table.column("grid_holds"))

    def test_e05_lemma34_holds(self):
        table = run_e05_lemma34(configurations=((2, 2, 9.0), (2, 3, 12.0)), samples=20_000)
        assert all(value == "True" for value in table.column("holds"))

    def test_e16_within_four_thirds(self):
        table = run_e16_four_thirds(trials=8, rng=np.random.default_rng(1))
        for value in table.column("max_ratio"):
            assert value <= 4 / 3 + 1e-9


class TestApproximation:
    def test_e03_all_within_guarantee(self):
        table = run_e03_ratio_sweep(
            families=("dirichlet", "adversarial"),
            trials=8,
            rng=np.random.default_rng(2),
        )
        for value in table.column("max_ratio"):
            assert value <= E_FACTOR + 1e-9

    def test_e08_single_user_gap_is_zero(self):
        table = run_e08_single_user_optimal(trials=5, rng=np.random.default_rng(3))
        for gap in table.column("max_abs_gap"):
            assert gap == pytest.approx(0.0, abs=1e-9)

    def test_e09_monotone_decreasing(self):
        table = run_e09_delay_tradeoff(num_cells=7, rng=np.random.default_rng(4))
        values = table.column("optimal_ep")
        assert values[0] == pytest.approx(7.0)  # d = 1 is blanket paging
        for i in range(len(values) - 1):
            assert values[i + 1] <= values[i] + 1e-9

    def test_e10_adaptive_never_loses(self):
        table = run_e10_adaptive(
            families=("dirichlet",), trials=4, rng=np.random.default_rng(5)
        )
        row = table.as_dicts()[0]
        assert row["adaptive_wins"] == row["trials"]
        assert row["mean_adaptive"] <= row["mean_oblivious"] + 1e-9


class TestExtensions:
    def test_e11_yellow_pages_shapes(self):
        table = run_e11_yellow_pages(trials=4, rng=np.random.default_rng(6))
        for row in table.as_dicts():
            # Optimizing over any fixed order beats the random-order baseline
            # on average.
            assert row["greedy_hit"] <= row["random"] + 1e-9

    def test_e11_signature_monotone(self):
        table = run_e11_signature_sweep(
            num_devices=3, num_cells=8, rng=np.random.default_rng(7)
        )
        values = table.column("weight_order_ep")
        for i in range(len(values) - 1):
            assert values[i] <= values[i + 1] + 1e-9

    def test_e12_caps_cost_more(self):
        table = run_e12_bandwidth(num_cells=8, rng=np.random.default_rng(8))
        for row in table.as_dicts():
            assert row["heuristic_ep"] >= row["uncapped_heuristic_ep"] - 1e-9
            assert row["heuristic_ep"] >= row["optimal_ep"] - 1e-9

    def test_e15_scheme_is_optimal_on_clusters(self):
        table = run_e15_clustered(trials=3, rng=np.random.default_rng(9))
        assert all(value == "True" for value in table.column("scheme_optimal"))


class TestHardness:
    def test_e06_equivalences(self):
        table = run_e06_reduction_m2d2(trials=6, rng=np.random.default_rng(10))
        row = table.as_dicts()[0]
        assert row["equivalences_hold"] == row["trials"]

    def test_e06b_equivalences(self):
        table = run_e06_reduction_general(
            configurations=((2, 2, 3),), trials=4, rng=np.random.default_rng(11)
        )
        row = table.as_dicts()[0]
        assert row["equivalences_hold"] == row["trials"]

    def test_e14_equivalences(self):
        table = run_e14_quasipartition2(
            trials=6, num_sizes=4, rng=np.random.default_rng(12)
        )
        row = table.as_dicts()[0]
        assert row["equivalences_hold"] == row["trials"]

    def test_e17_first_group_is_extra(self):
        table = run_e17_lifting(trials=2, num_cells=4, rng=np.random.default_rng(13))
        assert all(value == "True" for value in table.column("first_group_is_extra"))
        for gap in table.column("gap"):
            assert gap >= -1e-9

    def test_e18_qap_agrees(self):
        table = run_e18_qap(trials=2, num_cells=5, rng=np.random.default_rng(14))
        assert all(value == "True" for value in table.column("agree"))


class TestSystem:
    def test_e13_heuristic_saves_cells(self):
        table = run_e13_cellnet(radius=2, num_devices=4, horizon=250, seed=99)
        rows = {row["pager"]: row for row in table.as_dicts()}
        assert rows["heuristic"]["cells_per_call"] <= rows["blanket"]["cells_per_call"]
        assert rows["heuristic"]["saving_vs_blanket"] > 0
        assert rows["blanket"]["rounds_per_call"] == pytest.approx(1.0)
        assert rows["heuristic"]["rounds_per_call"] > 1.0

    def test_e13b_reporting_tradeoff_endpoints(self):
        table = run_e13_reporting_tradeoff(radius=2, num_devices=3, horizon=250)
        rows = {row["reporting"]: row for row in table.as_dicts()}
        assert rows["never"]["reports"] == 0
        assert rows["always"]["cells_paged"] < rows["never"]["cells_paged"]
        assert rows["always"]["reports"] > rows["la"]["reports"]

    def test_registry_lists_all_experiments(self):
        assert len(EXPERIMENTS) >= 18
        assert "E2" in EXPERIMENTS and "E13" in EXPERIMENTS
