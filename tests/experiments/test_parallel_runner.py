"""Determinism of the parallel experiment runner."""

import pytest

from repro.cli import main as cli_main
from repro.experiments import run_experiments
from repro.experiments.tables import render_all

# A cheap subset that still exercises rng-seeded and deterministic tables.
SUBSET = ["E1", "E2", "E4", "E8"]


class TestRunExperiments:
    def test_parallel_renders_byte_identical_to_serial(self):
        serial = render_all(run_experiments(SUBSET, jobs=1))
        parallel = render_all(run_experiments(SUBSET, jobs=4))
        assert parallel == serial

    def test_seeded_runs_identical_across_job_counts(self):
        serial = render_all(run_experiments(SUBSET, jobs=1, seed=99))
        parallel = render_all(run_experiments(SUBSET, jobs=2, seed=99))
        assert parallel == serial

    def test_output_order_matches_selection_order(self):
        tables = run_experiments(["E4", "E1"], jobs=2)
        assert [table.experiment_id for table in tables] == ["E4", "E1"]

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            run_experiments(["E999"])

    def test_rejects_nonpositive_jobs(self):
        with pytest.raises(ValueError):
            run_experiments(SUBSET, jobs=0)


class TestCliJobsFlag:
    def test_jobs_flag_output_matches_serial(self, capsys):
        assert cli_main(["experiments", "E1", "E4"]) == 0
        serial = capsys.readouterr().out
        assert cli_main(["experiments", "E1", "E4", "--jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        assert parallel == serial
