"""Experiments must dispatch solvers by registry name, never by import.

The whole point of ``repro.solvers`` is that the experiments layer names
solvers (``get_solver("exact")``) instead of binding the concrete
functions.  This test walks the AST of every module under
``src/repro/experiments/`` and fails if one

* imports from ``repro.core.exact`` or ``repro.core.heuristic`` at all, or
* imports, from anywhere under ``repro.core``, a function that the
  registry wraps (the set is derived live from ``spec.wraps``, so a newly
  registered solver is protected automatically).

Evaluators, orderings, instance constructors, and closed forms stay fair
game — the ban covers exactly the solver entry points.
"""

import ast
from pathlib import Path

import pytest

import repro.experiments
from repro.solvers import list_solvers

EXPERIMENTS_DIR = Path(repro.experiments.__file__).resolve().parent
MODULES = sorted(
    path for path in EXPERIMENTS_DIR.glob("*.py") if path.name != "__init__.py"
)

#: Modules no experiment may import from, wholesale.
BANNED_MODULES = ("core.exact", "core.heuristic")

#: Every function name the registry wraps (solver entry points).
WRAPPED_NAMES = frozenset(
    dotted.rsplit(".", 1)[1] for spec in list_solvers() for dotted in spec.wraps
)


def _core_imports(tree):
    """Yield ``(module_suffix, name)`` for every from-import out of repro.core."""
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom):
            module = node.module or ""
            if node.level > 0:  # relative: ..core.x inside experiments/
                qualified = module
            elif module.startswith("repro."):
                qualified = module[len("repro."):]
            else:
                continue
            if qualified == "core" or qualified.startswith("core."):
                for alias in node.names:
                    yield qualified, alias.name
        elif isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.startswith("repro.core"):
                    yield alias.name[len("repro."):], "*"


def test_registry_wraps_a_nontrivial_solver_set():
    assert len(WRAPPED_NAMES) >= 10, sorted(WRAPPED_NAMES)
    assert "optimal_strategy" in WRAPPED_NAMES
    assert "conference_call_heuristic" in WRAPPED_NAMES


@pytest.mark.parametrize("path", MODULES, ids=lambda p: p.stem)
def test_experiments_never_import_concrete_solvers(path):
    tree = ast.parse(path.read_text(), filename=str(path))
    violations = []
    for module, name in _core_imports(tree):
        if module.endswith(BANNED_MODULES):
            violations.append(f"{module} (module is off-limits, import {name})")
        elif name in WRAPPED_NAMES:
            violations.append(f"{module}.{name} (registry-wrapped solver)")
    assert not violations, (
        f"{path.name} bypasses the solver registry: {violations}; "
        "use repro.solvers.get_solver(name) instead"
    )
