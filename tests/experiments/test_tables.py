"""Unit tests for the experiment table rendering."""

import pytest

from repro.experiments import ExperimentTable, render_all


class TestTable:
    def test_add_row_and_columns(self):
        table = ExperimentTable("T", "demo", ["a", "b"])
        table.add_row(1, 2.5)
        table.add_row("x", 0.1)
        assert table.column("a") == [1, "x"]
        assert table.as_dicts()[0] == {"a": 1, "b": 2.5}

    def test_add_row_rejects_wrong_arity(self):
        table = ExperimentTable("T", "demo", ["a", "b"])
        with pytest.raises(ValueError, match="columns"):
            table.add_row(1)

    def test_column_rejects_unknown(self):
        table = ExperimentTable("T", "demo", ["a"])
        with pytest.raises(ValueError):
            table.column("zzz")

    def test_render_contains_everything(self):
        table = ExperimentTable("E99", "render test", ["name", "value"])
        table.add_row("alpha", 1.23456)
        table.add_note("a note")
        text = table.render()
        assert "E99" in text
        assert "alpha" in text
        assert "1.2346" in text  # floats render at 4 decimals
        assert "note: a note" in text

    def test_render_empty_table(self):
        table = ExperimentTable("E0", "empty", ["only"])
        assert "only" in table.render()

    def test_csv_export(self):
        table = ExperimentTable("E0", "csv", ["name", "value"])
        table.add_row("a,b", 0.5)
        csv_text = table.to_csv()
        lines = csv_text.strip().splitlines()
        assert lines[0] == "name,value"
        assert lines[1] == '"a,b",0.5000'

    def test_render_all_joins(self):
        one = ExperimentTable("A", "first", ["x"])
        two = ExperimentTable("B", "second", ["y"])
        combined = render_all([one, two])
        assert "A: first" in combined
        assert "B: second" in combined
