"""Unit tests for the experiment runner."""

import json

import pytest

from repro.experiments import (
    EXPERIMENTS,
    lint_attestation,
    main,
    run_experiments,
    save_report,
)


class TestRunner:
    def test_run_selected(self):
        tables = run_experiments(["E2"])
        assert len(tables) == 1
        assert tables[0].experiment_id == "E2"

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError, match="E999"):
            run_experiments(["E999"])

    def test_main_renders(self):
        text = main(["E2"])
        assert "E2:" in text
        assert "6.4694" in text

    def test_registry_complete(self):
        expected = {
            "E1", "E2", "E3", "E4", "E5", "E6", "E6b", "E7", "E8", "E9",
            "E10", "E11a", "E11b", "E12", "E13", "E13b", "E14", "E15",
            "E16", "E17", "E18", "E19", "E20", "E21", "E23", "E24",
        }
        assert expected <= set(EXPERIMENTS)

    def test_save_report_writes_txt_and_csv(self, tmp_path):
        written = save_report(str(tmp_path), ["E2"], lint_targets=None, trace=False)
        assert len(written) == 2
        txt = (tmp_path / "e2.txt").read_text()
        csv = (tmp_path / "e2.csv").read_text()
        assert "E2:" in txt
        assert csv.splitlines()[0].startswith("variant,")

    def test_save_report_writes_trace_attestation(self, tmp_path):
        from repro.obs import load_events, summarize

        written = save_report(str(tmp_path), ["E2"], lint_targets=None)
        assert any(path.endswith("trace.jsonl") for path in written)
        summary = summarize(load_events(tmp_path / "trace.jsonl"))
        assert summary.schema == "repro-trace/1"
        assert "experiments.E2" in summary.spans
        assert summary.spans["experiments.E2"].count == 1

    def test_save_report_writes_lint_attestation(self, tmp_path):
        written = save_report(str(tmp_path), ["E2"])
        assert written[-1].endswith("lint.json")
        payload = json.loads((tmp_path / "lint.json").read_text())
        assert payload["tool"] == "replint"
        assert payload["clean"] is True
        assert payload["violations"] == []

    def test_lint_attestation_handles_missing_targets(self):
        payload = lint_attestation(targets=("no/such/dir",))
        assert payload["clean"] is None
        assert payload["targets"] == []
