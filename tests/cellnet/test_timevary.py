"""Tests for the time-varying layer: kernels, belief propagation, HMY.

The module's promises, machine-checked: analytic transition matrices match
long empirical traces, matrix-power propagation matches brute-force matrix
powers, registration cycles conserve probability, policy evaluation batches
through the solver registry without changing the answer, and the HMY
alternation produces a monotone non-increasing cost trajectory that reaches
a fixed point.
"""

import numpy as np
import pytest

from repro.cellnet import (
    BeliefPropagator,
    CellTopology,
    GravityMobility,
    RandomWalk,
    RandomWaypoint,
    distance_cycle,
    empirical_transition_matrix,
    evaluate_registration,
    gravity_transition_matrix,
    hmy_fixed_point,
    random_walk_transition_matrix,
    registration_cycle,
    stationary_from_matrix,
    timer_cycle,
    transition_matrix,
    validate_transition_matrix,
)
from repro.errors import SimulationError


@pytest.fixture
def topology():
    return CellTopology.hexagonal_disk(2)


class TestTransitionMatrices:
    def test_random_walk_rows_are_stochastic(self, topology):
        matrix = random_walk_transition_matrix(
            RandomWalk(topology, stay_probability=0.4), topology
        )
        assert matrix.shape == (topology.num_cells, topology.num_cells)
        assert np.allclose(matrix.sum(axis=1), 1.0)

    def test_random_walk_matches_model_support(self, topology):
        walk = RandomWalk(topology, stay_probability=0.25)
        matrix = random_walk_transition_matrix(walk, topology)
        for cell in range(topology.num_cells):
            neighbors = topology.neighbors(cell)
            assert matrix[cell, cell] == pytest.approx(0.25)
            for neighbor in neighbors:
                assert matrix[cell, neighbor] == pytest.approx(
                    0.75 / len(neighbors)
                )

    def test_gravity_rows_are_stochastic_and_hotspot_biased(self, topology):
        attraction = [1.0 + (cell % 3) for cell in range(topology.num_cells)]
        model = GravityMobility(topology, attraction, stay_bonus=2.0)
        matrix = gravity_transition_matrix(model, topology)
        assert np.allclose(matrix.sum(axis=1), 1.0)
        # a more attractive neighbor draws more mass than a less attractive one
        for cell in range(topology.num_cells):
            neighbors = topology.neighbors(cell)
            for a in neighbors:
                for b in neighbors:
                    if attraction[a] > attraction[b]:
                        assert matrix[cell, a] > matrix[cell, b]

    def test_analytic_matches_empirical_random_walk(self, topology, rng):
        """The closed form agrees with a long trace of the actual model."""
        walk = RandomWalk(topology, stay_probability=0.4)
        analytic = random_walk_transition_matrix(walk, topology)
        empirical = empirical_transition_matrix(
            walk, topology, samples=120_000, rng=rng
        )
        assert np.abs(analytic - empirical).max() < 0.05

    def test_dispatch_is_analytic_for_closed_forms(self, topology):
        # no rng needed: these never sample
        walk_matrix = transition_matrix(RandomWalk(topology), topology)
        gravity_matrix = transition_matrix(
            GravityMobility(topology, [1.0] * topology.num_cells), topology
        )
        assert np.allclose(walk_matrix.sum(axis=1), 1.0)
        assert np.allclose(gravity_matrix.sum(axis=1), 1.0)

    def test_dispatch_requires_rng_for_stateful_models(self, topology):
        with pytest.raises(SimulationError, match="rng"):
            transition_matrix(RandomWaypoint(topology), topology)

    def test_empirical_waypoint_is_stochastic(self, topology, rng):
        matrix = transition_matrix(
            RandomWaypoint(topology), topology, rng=rng, samples=5_000
        )
        assert np.allclose(matrix.sum(axis=1), 1.0)

    def test_empirical_rejects_nonpositive_samples(self, topology, rng):
        with pytest.raises(SimulationError, match="samples"):
            empirical_transition_matrix(
                RandomWalk(topology), topology, samples=0, rng=rng
            )

    def test_validate_rejects_bad_matrices(self):
        with pytest.raises(SimulationError, match="square"):
            validate_transition_matrix(np.ones((2, 3)))
        with pytest.raises(SimulationError, match="non-negative"):
            validate_transition_matrix(np.array([[1.5, -0.5], [0.0, 1.0]]))
        with pytest.raises(SimulationError, match="sum"):
            validate_transition_matrix(np.array([[0.5, 0.4], [0.0, 1.0]]))


class TestBeliefPropagator:
    def test_matches_brute_force_matrix_power(self, topology):
        matrix = random_walk_transition_matrix(RandomWalk(topology), topology)
        propagator = BeliefPropagator(matrix)
        for steps in (0, 1, 2, 3, 7, 13, 64):
            expected = np.linalg.matrix_power(matrix, steps)
            for cell in (0, topology.num_cells - 1):
                assert np.allclose(
                    propagator.distribution(cell, steps), expected[cell]
                )

    def test_distribution_stays_normalized(self, topology):
        matrix = random_walk_transition_matrix(RandomWalk(topology), topology)
        propagator = BeliefPropagator(matrix)
        for steps in (0, 5, 100):
            assert propagator.distribution(3, steps).sum() == pytest.approx(1.0)

    def test_zero_steps_is_a_point_mass(self, topology):
        matrix = random_walk_transition_matrix(RandomWalk(topology), topology)
        belief = BeliefPropagator(matrix).distribution(4, 0)
        assert belief[4] == pytest.approx(1.0)
        assert belief.sum() == pytest.approx(1.0)

    def test_rejects_bad_inputs(self, topology):
        matrix = random_walk_transition_matrix(RandomWalk(topology), topology)
        propagator = BeliefPropagator(matrix)
        with pytest.raises(SimulationError, match="steps"):
            propagator.evolve(np.full(topology.num_cells, 1.0), -1)
        with pytest.raises(SimulationError, match="cell"):
            propagator.distribution(topology.num_cells, 1)
        with pytest.raises(SimulationError, match="shape"):
            propagator.evolve(np.ones(3), 1)

    def test_stationary_from_matrix_is_a_fixed_point(self, topology):
        attraction = [1.0 + (cell % 4) for cell in range(topology.num_cells)]
        matrix = gravity_transition_matrix(
            GravityMobility(topology, attraction), topology
        )
        stationary = stationary_from_matrix(matrix)
        assert stationary.sum() == pytest.approx(1.0)
        assert np.allclose(stationary @ matrix, stationary, atol=1e-8)


class TestRegistrationCycles:
    def test_timer_cycle_shape(self, topology):
        matrix = random_walk_transition_matrix(RandomWalk(topology), topology)
        cycle = timer_cycle(BeliefPropagator(matrix), 0, 5)
        assert cycle.ages == (0, 1, 2, 3, 4)
        assert cycle.report_rate == pytest.approx(0.2)
        assert cycle.candidate_cells == tuple(range(topology.num_cells))
        for conditional in cycle.conditionals:
            assert conditional.sum() == pytest.approx(1.0)

    def test_distance_cycle_confined_to_ring_interior(self, topology):
        matrix = random_walk_transition_matrix(RandomWalk(topology), topology)
        start = 0
        threshold = 2
        cycle = distance_cycle(
            BeliefPropagator(matrix), topology, start, threshold
        )
        for cell in cycle.candidate_cells:
            assert topology.hop_distance(start, cell) < threshold
        for conditional in cycle.conditionals:
            assert conditional.shape == (len(cycle.candidate_cells),)
            assert conditional.sum() == pytest.approx(1.0)

    def test_distance_cycle_report_rate_from_survival(self, topology):
        """1/rate is the expected cycle length = sum of survival weights."""
        matrix = random_walk_transition_matrix(RandomWalk(topology), topology)
        cycle = distance_cycle(BeliefPropagator(matrix), topology, 0, 2)
        assert 1.0 / cycle.report_rate == pytest.approx(sum(cycle.age_weights))
        # survival is non-increasing in age
        weights = list(cycle.age_weights)
        assert all(b <= a + 1e-12 for a, b in zip(weights, weights[1:]))

    def test_dispatch_rejects_unknown_kind(self, topology):
        matrix = random_walk_transition_matrix(RandomWalk(topology), topology)
        with pytest.raises(SimulationError, match="kind"):
            registration_cycle(
                BeliefPropagator(matrix), topology, 0, kind="psychic", threshold=2
            )

    def test_validation(self, topology):
        matrix = random_walk_transition_matrix(RandomWalk(topology), topology)
        propagator = BeliefPropagator(matrix)
        with pytest.raises(SimulationError, match="period"):
            timer_cycle(propagator, 0, 0)
        with pytest.raises(SimulationError, match="threshold"):
            distance_cycle(propagator, topology, 0, 0)


class TestEvaluateRegistration:
    def test_batched_and_loop_planners_agree(self, topology):
        matrix = random_walk_transition_matrix(RandomWalk(topology), topology)
        batched = evaluate_registration(
            topology, matrix, kind="timer", threshold=5, max_rounds=3,
            call_rate=0.1, planner="heuristic-batch",
        )
        loop = evaluate_registration(
            topology, matrix, kind="timer", threshold=5, max_rounds=3,
            call_rate=0.1, planner="heuristic-fast",
        )
        assert batched.batched
        assert not loop.batched
        assert batched.combined_cost == pytest.approx(loop.combined_cost)
        assert batched.plans == loop.plans

    def test_cost_decomposition(self, topology):
        matrix = random_walk_transition_matrix(RandomWalk(topology), topology)
        evaluation = evaluate_registration(
            topology, matrix, kind="distance", threshold=2, max_rounds=3,
            call_rate=0.25, report_cost=2.0,
        )
        assert evaluation.combined_cost == pytest.approx(
            2.0 * evaluation.report_rate + 0.25 * evaluation.paging_per_call
        )
        assert evaluation.paging_per_call >= 1.0

    def test_more_frequent_timer_reports_cheapen_paging(self, topology):
        matrix = random_walk_transition_matrix(RandomWalk(topology), topology)
        frequent = evaluate_registration(
            topology, matrix, kind="timer", threshold=2, max_rounds=3,
            call_rate=0.1,
        )
        rare = evaluate_registration(
            topology, matrix, kind="timer", threshold=20, max_rounds=3,
            call_rate=0.1,
        )
        assert frequent.report_rate > rare.report_rate
        assert frequent.paging_per_call < rare.paging_per_call

    def test_validation(self, topology):
        matrix = random_walk_transition_matrix(RandomWalk(topology), topology)
        with pytest.raises(SimulationError, match="call_rate"):
            evaluate_registration(
                topology, matrix, kind="timer", threshold=2, max_rounds=3,
                call_rate=-0.1,
            )
        with pytest.raises(SimulationError, match="start weight"):
            evaluate_registration(
                topology, matrix, kind="timer", threshold=2, max_rounds=3,
                call_rate=0.1, start_cells=[0, 1], start_weights=[1.0],
            )


class TestHMYIteration:
    def test_trajectory_is_monotone_and_converges(self, topology):
        matrix = random_walk_transition_matrix(RandomWalk(topology), topology)
        result = hmy_fixed_point(
            topology, matrix, kind="timer", candidates=[2, 5, 10, 20],
            max_rounds=3, call_rate=0.1,
        )
        costs = result.costs
        assert all(b <= a + 1e-12 for a, b in zip(costs, costs[1:]))
        assert result.converged
        assert result.threshold in (2, 5, 10, 20)
        assert result.evaluation.combined_cost == pytest.approx(costs[-1])

    def test_fixed_point_is_the_sweep_minimum(self, topology):
        """Deterministic evaluation: the fixed point is the global argmin."""
        matrix = random_walk_transition_matrix(RandomWalk(topology), topology)
        candidates = [1, 2, 3]
        result = hmy_fixed_point(
            topology, matrix, kind="distance", candidates=candidates,
            max_rounds=3, call_rate=0.1,
        )
        sweep = {
            threshold: evaluate_registration(
                topology, matrix, kind="distance", threshold=threshold,
                max_rounds=3, call_rate=0.1,
            ).combined_cost
            for threshold in candidates
        }
        assert result.threshold == min(sweep, key=lambda t: sweep[t])
        assert result.evaluation.combined_cost == pytest.approx(
            sweep[result.threshold]
        )

    def test_phases_alternate(self, topology):
        matrix = random_walk_transition_matrix(RandomWalk(topology), topology)
        result = hmy_fixed_point(
            topology, matrix, kind="timer", candidates=[5, 2],
            max_rounds=3, call_rate=0.1,
        )
        assert result.trajectory[0].phase == "paging"
        assert all(
            step.phase == "registration" for step in result.trajectory[1:]
        )

    def test_validation(self, topology):
        matrix = random_walk_transition_matrix(RandomWalk(topology), topology)
        with pytest.raises(SimulationError, match="candidate"):
            hmy_fixed_point(
                topology, matrix, kind="timer", candidates=[],
                max_rounds=3, call_rate=0.1,
            )
        with pytest.raises(SimulationError, match="distinct"):
            hmy_fixed_point(
                topology, matrix, kind="timer", candidates=[2, 2],
                max_rounds=3, call_rate=0.1,
            )
