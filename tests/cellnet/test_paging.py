"""Unit tests for the paging engine."""

import numpy as np
import pytest

from repro.cellnet import (
    AdaptivePager,
    BlanketPager,
    HeuristicPager,
    build_sub_instance,
    page_with_strategy,
)
from repro.core import Strategy
from repro.errors import SimulationError


def uniform_priors(num_devices, num_cells):
    return [np.full(num_cells, 1.0 / num_cells) for _ in range(num_devices)]


class TestSubInstance:
    def test_restricts_and_renormalizes(self):
        priors = [np.array([0.5, 0.3, 0.2, 0.0])]
        instance, cells = build_sub_instance(priors, [1, 2], max_rounds=2)
        assert cells == (1, 2)
        assert instance.probability(0, 0) == pytest.approx(0.6)
        assert instance.probability(0, 1) == pytest.approx(0.4)

    def test_zero_mass_cells_get_floor(self):
        priors = [np.array([1.0, 0.0, 0.0])]
        instance, _cells = build_sub_instance(priors, [1, 2], max_rounds=2)
        assert sum(instance.row(0)) == pytest.approx(1.0)
        assert all(p > 0 for p in instance.row(0))

    def test_round_budget_clamped_to_cells(self):
        priors = uniform_priors(1, 5)
        instance, _cells = build_sub_instance(priors, [0, 1], max_rounds=9)
        assert instance.max_rounds == 2

    def test_rejects_empty_candidates(self):
        with pytest.raises(SimulationError):
            build_sub_instance(uniform_priors(1, 4), [], max_rounds=2)


class TestPageWithStrategy:
    def test_stops_when_all_found(self):
        strategy = Strategy([[0, 1], [2, 3]])
        found, paged, rounds, complete = page_with_strategy(
            strategy, (10, 11, 12, 13), true_cells=(10, 11)
        )
        assert complete
        assert (paged, rounds) == (2, 1)
        assert found == {0: 10, 1: 11}

    def test_incomplete_when_device_outside(self):
        strategy = Strategy([[0, 1]])
        found, paged, rounds, complete = page_with_strategy(
            strategy, (10, 11), true_cells=(10, 99)
        )
        assert not complete
        assert found == {0: 10}
        assert (paged, rounds) == (2, 1)


class TestPagers:
    def test_blanket_pages_all_candidates(self):
        pager = BlanketPager()
        outcome = pager.search(
            uniform_priors(2, 6), [0, 1, 2], true_cells=[1, 2], max_rounds=3,
            num_cells=6,
        )
        assert outcome.cells_paged == 3
        assert outcome.rounds_used == 1
        assert not outcome.used_fallback

    def test_heuristic_uses_multiple_rounds(self, rng):
        priors = [rng.dirichlet(np.ones(8)) for _ in range(2)]
        pager = HeuristicPager()
        outcome = pager.search(
            priors, list(range(8)), true_cells=[0, 1], max_rounds=3, num_cells=8
        )
        assert outcome.found_cells == {0: 0, 1: 1}
        assert outcome.cells_paged <= 8

    def test_fallback_sweeps_network(self):
        pager = HeuristicPager()
        outcome = pager.search(
            uniform_priors(1, 10), [0, 1, 2], true_cells=[7], max_rounds=2,
            num_cells=10,
        )
        assert outcome.used_fallback
        assert outcome.found_cells == {0: 7}
        assert outcome.cells_paged == 10  # candidates + the 7-cell sweep

    def test_adaptive_finds_devices(self, rng):
        priors = [rng.dirichlet(np.ones(6)) for _ in range(2)]
        pager = AdaptivePager()
        outcome = pager.search(
            priors, list(range(6)), true_cells=[3, 4], max_rounds=3, num_cells=6
        )
        assert outcome.found_cells == {0: 3, 1: 4}
        assert outcome.rounds_used <= 3

    def test_adaptive_fallback_outside_candidates(self):
        pager = AdaptivePager()
        outcome = pager.search(
            uniform_priors(1, 8), [0, 1], true_cells=[5], max_rounds=2, num_cells=8
        )
        assert outcome.used_fallback
        assert outcome.found_cells == {0: 5}


class TestSearchMany:
    def _batch(self, rng, num_calls, num_cells):
        priors_batch = []
        true_cells_batch = []
        for call in range(num_calls):
            devices = 1 + call % 3  # mixed device counts across the batch
            priors_batch.append([rng.dirichlet(np.ones(num_cells)) for _ in range(devices)])
            true_cells_batch.append([call % num_cells] * devices)
        return priors_batch, true_cells_batch

    @pytest.mark.parametrize("solver", ["heuristic-fast", "heuristic-batch"])
    def test_matches_per_call_search(self, rng, solver):
        num_cells = 10
        candidates = list(range(num_cells))
        priors_batch, true_cells_batch = self._batch(rng, 7, num_cells)
        pager = HeuristicPager(solver)
        many = pager.search_many(
            priors_batch, candidates, true_cells_batch, max_rounds=3,
            num_cells=num_cells,
        )
        assert len(many) == 7
        for priors, true_cells, outcome in zip(
            priors_batch, true_cells_batch, many
        ):
            single = pager.search(
                priors, candidates, true_cells, max_rounds=3, num_cells=num_cells
            )
            assert outcome.found_cells == single.found_cells
            assert outcome.cells_paged == single.cells_paged
            assert outcome.rounds_used == single.rounds_used
            assert outcome.used_fallback == single.used_fallback

    def test_fallback_calls_still_resolve(self, rng):
        # Device 0 of call 1 sits outside the candidate set -> sweep.
        num_cells = 12
        candidates = [0, 1, 2, 3]
        priors_batch = [
            [rng.dirichlet(np.ones(num_cells))],
            [rng.dirichlet(np.ones(num_cells))],
        ]
        outcomes = HeuristicPager("heuristic-batch").search_many(
            priors_batch, candidates, [[2], [9]], max_rounds=2,
            num_cells=num_cells,
        )
        assert not outcomes[0].used_fallback or outcomes[0].found_cells == {0: 2}
        assert outcomes[1].used_fallback
        assert outcomes[1].found_cells == {0: 9}


class TestCostAwarePager:
    def test_finds_devices(self, rng):
        from repro.cellnet import CostAwarePager

        costs = [float(v) for v in rng.uniform(1.0, 5.0, size=8)]
        pager = CostAwarePager(costs)
        priors = [rng.dirichlet(np.ones(8)) for _ in range(2)]
        outcome = pager.search(
            priors, list(range(8)), true_cells=[2, 6], max_rounds=3, num_cells=8
        )
        assert outcome.found_cells == {0: 2, 1: 6}
        assert outcome.rounds_used <= 3

    def test_unit_costs_match_heuristic_pager(self, rng):
        from repro.cellnet import CostAwarePager, HeuristicPager

        priors = [rng.dirichlet(np.ones(6)) for _ in range(2)]
        flat = CostAwarePager([1.0] * 6).search(
            priors, list(range(6)), true_cells=[0, 1], max_rounds=3, num_cells=6
        )
        plain = HeuristicPager().search(
            priors, list(range(6)), true_cells=[0, 1], max_rounds=3, num_cells=6
        )
        assert flat.cells_paged == plain.cells_paged

    def test_avoids_expensive_cells_early(self, rng):
        """A pricey cell leaves the first round when costs are considered."""
        from repro.cellnet import CostAwarePager

        priors = [np.full(6, 1.0 / 6) for _ in range(2)]
        priors[0] = np.array([0.4, 0.12, 0.12, 0.12, 0.12, 0.12])
        costs = [50.0, 1.0, 1.0, 1.0, 1.0, 1.0]
        pager = CostAwarePager(costs)
        instance_cells = list(range(6))
        outcome = pager.search(
            priors, instance_cells, true_cells=[1, 2], max_rounds=2, num_cells=6
        )
        assert outcome.found_cells == {0: 1, 1: 2}

    def test_validation(self):
        from repro.cellnet import CostAwarePager

        with pytest.raises(SimulationError):
            CostAwarePager([1.0, 0.0])
        pager = CostAwarePager([1.0] * 4)
        with pytest.raises(SimulationError, match="cost table"):
            pager.search(
                uniform_priors(1, 8), [0, 1], true_cells=[0], max_rounds=2,
                num_cells=8,
            )

    def test_cost_of_cells(self):
        from repro.cellnet import CostAwarePager

        pager = CostAwarePager([1.0, 2.0, 3.0])
        assert pager.cost_of_cells([0, 2]) == 4.0
