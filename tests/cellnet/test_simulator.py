"""Unit and behavior tests for the cellular simulator."""

import numpy as np
import pytest

from repro.cellnet import (
    CellTopology,
    CellularSimulator,
    LocationAreaPlan,
    RandomWalk,
    SimulationConfig,
)
from repro.errors import SimulationError


def build_simulator(pager="heuristic", reporting="la", seed=11, **config_overrides):
    rng = np.random.default_rng(seed)
    topology = CellTopology.hexagonal_disk(2)
    plan = LocationAreaPlan.by_bfs(topology, 3)
    models = [RandomWalk(topology, stay_probability=0.3) for _ in range(4)]
    config = SimulationConfig(
        horizon=config_overrides.pop("horizon", 200),
        call_rate=config_overrides.pop("call_rate", 0.1),
        max_paging_rounds=3,
        reporting=reporting,
        pager=pager,
        **config_overrides,
    )
    return CellularSimulator(topology, plan, models, config, rng=rng)


class TestConfig:
    def test_rejects_unknown_pager(self):
        with pytest.raises(SimulationError, match="pager"):
            SimulationConfig(pager="nope")

    def test_rejects_unknown_reporting(self):
        with pytest.raises(SimulationError, match="reporting"):
            SimulationConfig(reporting="nope")

    def test_rejects_bad_horizon(self):
        with pytest.raises(SimulationError):
            SimulationConfig(horizon=0)


class TestRun:
    def test_all_calls_succeed(self):
        simulator = build_simulator()
        report = simulator.run()
        assert report.metrics.calls_handled > 0
        for record in report.metrics.call_records:
            assert record.cells_paged >= record.participants

    def test_la_reporting_never_needs_fallback(self):
        """With LA-crossing reports the registry is always LA-accurate."""
        report = build_simulator(reporting="la").run()
        assert report.metrics.fallback_searches == 0

    def test_always_reporting_pages_one_cell_per_device(self):
        report = build_simulator(reporting="always").run()
        for record in report.metrics.call_records:
            assert record.cells_paged <= record.participants

    def test_never_reporting_generates_no_reports(self):
        report = build_simulator(reporting="never").run()
        assert report.metrics.report_messages == 0

    def test_heuristic_beats_blanket_on_same_stream(self):
        blanket = build_simulator(pager="blanket").run()
        heuristic = build_simulator(pager="heuristic").run()
        assert heuristic.metrics.calls_handled == blanket.metrics.calls_handled
        assert (
            heuristic.metrics.mean_cells_per_call
            <= blanket.metrics.mean_cells_per_call
        )

    def test_round_budget_respected(self):
        report = build_simulator().run()
        for record in report.metrics.call_records:
            # LA-accurate registry means no fallback round is ever added.
            assert record.rounds_used <= 3

    def test_confirmed_location_shrinks_search(self):
        """After a call finds a device, an immediate second search is cheap."""
        simulator = build_simulator(call_rate=0.5, horizon=100)
        report = simulator.run()
        cheap_calls = [
            record
            for record in report.metrics.call_records
            if record.cells_paged == record.participants
        ]
        assert cheap_calls, "confirmations should occasionally make searches exact"

    def test_initial_cells_honored(self):
        rng = np.random.default_rng(0)
        topology = CellTopology.hexagonal_disk(1)
        plan = LocationAreaPlan.single_area(topology.num_cells)
        models = [RandomWalk(topology) for _ in range(2)]
        config = SimulationConfig(horizon=1, call_rate=0.0)
        simulator = CellularSimulator(
            topology, plan, models, config, rng=rng, initial_cells=[2, 3]
        )
        assert simulator.registry.lookup(0).reported_cell == 2
        assert simulator.registry.lookup(1).reported_cell == 3

    def test_estimated_prior_normalized(self):
        simulator = build_simulator(horizon=50)
        simulator.run()
        prior = simulator.estimated_prior(0)
        assert prior.sum() == pytest.approx(1.0)
        assert all(prior > 0)

    def test_summary_keys(self):
        report = build_simulator().run()
        summary = report.summary()
        for key in ("calls", "reports", "cells_paged", "devices", "cells"):
            assert key in summary


class TestInvariants:
    def test_metrics_consistent_with_call_records(self):
        report = build_simulator(call_rate=0.2).run()
        metrics = report.metrics
        assert metrics.cells_paged == sum(
            record.cells_paged for record in metrics.call_records
        )
        assert metrics.calls_handled == len(metrics.call_records)
        assert sum(metrics.rounds_histogram.values()) == metrics.calls_handled
        assert metrics.total_wireless_messages == (
            metrics.report_messages + metrics.cells_paged
        )

    def test_registry_la_accurate_under_la_reporting(self):
        simulator = build_simulator(reporting="la")
        simulator.run()
        # Final check: every device's true cell is inside its reported LA.
        plan_area = simulator._plan.area_of  # noqa: SLF001 - test introspection
        for device in simulator.registry.known_devices():
            record = simulator.registry.lookup(device)
            true_cell = simulator.device_cell(device)
            assert plan_area(true_cell) == record.reported_area

    def test_each_call_pages_at_least_participants(self):
        report = build_simulator(call_rate=0.3).run()
        for record in report.metrics.call_records:
            assert record.cells_paged >= record.participants
            assert record.rounds_used >= 1

    def test_distance_reporting_fallbacks_never_lose_devices(self):
        report = build_simulator(reporting="distance", call_rate=0.2).run()
        # Every call record exists <=> every search eventually succeeded.
        assert report.metrics.calls_handled == len(report.metrics.call_records)

    def test_timer_reporting_search_succeeds_via_full_candidates(self):
        report = build_simulator(reporting="timer", call_rate=0.2).run()
        for record in report.metrics.call_records:
            assert not record.used_fallback  # candidates = whole network


class TestPriorModes:
    def test_rejects_unknown_mode(self):
        with pytest.raises(SimulationError, match="prior mode"):
            SimulationConfig(prior_mode="psychic")

    def test_uniform_mode_never_learns(self):
        simulator = build_simulator(horizon=60, prior_mode="uniform")
        simulator.run()
        prior = simulator.estimated_prior(0)
        assert np.allclose(prior, prior[0])

    def test_online_beats_uniform_prior(self):
        online = build_simulator(call_rate=0.2, horizon=300).run()
        uniform = build_simulator(
            call_rate=0.2, horizon=300, prior_mode="uniform"
        ).run()
        assert (
            online.metrics.mean_cells_per_call
            <= uniform.metrics.mean_cells_per_call
        )


class LegacyRingSimulator(CellularSimulator):
    """The pre-fix candidate ring: pages ``hop_distance <= threshold``.

    ``DistanceReport`` fires at ``>= threshold``, so un-reported drift is
    strictly inside the ring; the outermost ring the old code paged can
    never hold the device in a fault-free run.
    """

    def _candidate_cells(self, device, time):
        record = self.registry.lookup(device)
        config = self._config  # noqa: SLF001 - deliberate legacy replay
        if config.reporting == "distance" and record.confirmed_cell is None:
            radius = config.distance_threshold
            return tuple(
                cell
                for cell in range(self._topology.num_cells)  # noqa: SLF001
                if self._topology.hop_distance(record.reported_cell, cell)  # noqa: SLF001
                <= radius
            )
        return super()._candidate_cells(device, time)


class TestDistanceRingFix:
    """Regression for the candidate-ring off-by-one (ISSUE 9 headline)."""

    def build(self, simulator_cls, seed=11):
        rng = np.random.default_rng(seed)
        topology = CellTopology.hexagonal_disk(2)
        plan = LocationAreaPlan.by_bfs(topology, 3)
        models = [RandomWalk(topology, stay_probability=0.3) for _ in range(4)]
        config = SimulationConfig(
            horizon=200, call_rate=0.1, max_paging_rounds=3,
            reporting="distance", pager="heuristic",
        )
        return simulator_cls(topology, plan, models, config, rng=rng)

    def test_tight_ring_pages_strictly_fewer_cells_at_equal_found_rate(self):
        fixed = self.build(CellularSimulator).run()
        legacy = self.build(LegacyRingSimulator).run()
        # identical call stream, every device found in both runs...
        assert fixed.metrics.calls_handled == legacy.metrics.calls_handled
        assert fixed.metrics.calls_handled > 0
        assert all(
            record.failed_devices == 0 for record in fixed.metrics.call_records
        )
        assert fixed.metrics.fallback_searches == 0
        # ...for strictly fewer cells paged: the boundary ring was waste.
        assert fixed.metrics.cells_paged < legacy.metrics.cells_paged

    def test_device_always_inside_open_ring_without_faults(self):
        """The invariant the fix relies on, checked against ground truth."""
        simulator = self.build(CellularSimulator)
        simulator.run()
        threshold = simulator._config.distance_threshold  # noqa: SLF001
        for device in simulator.registry.known_devices():
            record = simulator.registry.lookup(device)
            distance = simulator._topology.hop_distance(  # noqa: SLF001
                record.reported_cell, simulator.device_cell(device)
            )
            assert distance < threshold


class TestConditionalPriors:
    def test_config_accepts_conditional(self):
        config = SimulationConfig(prior_mode="conditional")
        assert config.prior_mode == "conditional"

    def test_rejects_nonpositive_transition_samples(self):
        with pytest.raises(SimulationError, match="transition_samples"):
            SimulationConfig(transition_samples=0)

    def test_conditional_beats_online_under_distance_reporting(self):
        """The acceptance bar: evolved beliefs page fewer cells per call."""
        online = build_simulator(
            pager="heuristic-batch", reporting="distance", horizon=300
        ).run()
        conditional = build_simulator(
            pager="heuristic-batch", reporting="distance", horizon=300,
            prior_mode="conditional",
        ).run()
        assert conditional.metrics.calls_handled == online.metrics.calls_handled
        assert (
            conditional.metrics.mean_cells_per_call
            < online.metrics.mean_cells_per_call
        )

    def test_conditional_prior_is_normalized_and_evolves(self):
        simulator = build_simulator(
            reporting="distance", horizon=50, prior_mode="conditional"
        )
        simulator.run()
        fresh = simulator.estimated_prior(0, time=50)
        assert fresh.sum() == pytest.approx(1.0)
        record = simulator.registry.lookup(0)
        # at the report instant the belief is a point mass at the reported
        # cell; it spreads as the report ages
        at_report = simulator.estimated_prior(0, time=record.updated_at)
        assert at_report[record.reported_cell] == pytest.approx(1.0)
        aged = simulator.estimated_prior(0, time=record.updated_at + 10)
        assert aged[record.reported_cell] < 1.0
        assert aged.sum() == pytest.approx(1.0)

    def test_conditional_mode_is_deterministic(self):
        first = build_simulator(
            reporting="distance", prior_mode="conditional"
        ).run()
        second = build_simulator(
            reporting="distance", prior_mode="conditional"
        ).run()
        assert first.metrics == second.metrics

    def test_conditional_mode_works_with_stateful_models(self):
        """RandomWaypoint kernels are estimated empirically, then reset."""
        from repro.cellnet import RandomWaypoint

        rng = np.random.default_rng(5)
        topology = CellTopology.hexagonal_disk(2)
        plan = LocationAreaPlan.by_bfs(topology, 3)
        models = RandomWaypoint(topology).clone_for_devices(3)
        config = SimulationConfig(
            horizon=120, call_rate=0.15, reporting="timer",
            prior_mode="conditional", transition_samples=500,
        )
        report = CellularSimulator(topology, plan, models, config, rng=rng).run()
        assert report.metrics.calls_handled > 0

    def test_non_conditional_streams_unchanged(self):
        """Adding the machinery must not shift legacy rng streams."""
        report = build_simulator(reporting="distance").run()
        again = build_simulator(reporting="distance").run()
        assert report.metrics == again.metrics


class TestCallDurations:
    def test_rejects_negative_duration(self):
        with pytest.raises(SimulationError):
            SimulationConfig(mean_call_duration=-1)

    def test_in_call_tracking_cheapens_searches(self):
        """Ongoing calls keep devices located, so searches get cheaper."""
        instant = build_simulator(call_rate=0.3, horizon=300).run()
        tracked = build_simulator(
            call_rate=0.3, horizon=300, mean_call_duration=30
        ).run()
        assert tracked.metrics.calls_handled > 0
        assert (
            tracked.metrics.mean_cells_per_call
            < instant.metrics.mean_cells_per_call
        )

    def test_zero_duration_is_legacy_behavior(self):
        base = build_simulator(call_rate=0.2).run()
        explicit = build_simulator(call_rate=0.2, mean_call_duration=0).run()
        assert (
            base.metrics.mean_cells_per_call
            == explicit.metrics.mean_cells_per_call
        )


class TestDeterminism:
    """Every stochastic path flows through the instance Generator: running
    the same configuration twice from the same seed must reproduce the full
    report, for every pager/reporting combination and with faults on."""

    @pytest.mark.parametrize("pager", ["blanket", "heuristic", "adaptive"])
    @pytest.mark.parametrize("reporting", ["la", "always", "distance"])
    def test_same_seed_same_report(self, pager, reporting):
        first = build_simulator(pager=pager, reporting=reporting).run()
        second = build_simulator(pager=pager, reporting=reporting).run()
        assert first.metrics == second.metrics
        assert first.summary() == second.summary()

    def test_same_seed_same_report_with_durations(self):
        first = build_simulator(call_rate=0.3, mean_call_duration=20).run()
        second = build_simulator(call_rate=0.3, mean_call_duration=20).run()
        assert first.metrics == second.metrics

    def test_different_seeds_differ(self):
        first = build_simulator(seed=11).run()
        second = build_simulator(seed=12).run()
        assert first.metrics != second.metrics
