"""Unit tests for cell topologies."""

import networkx as nx
import pytest

from repro.cellnet import CellTopology
from repro.errors import SimulationError


class TestBuilders:
    def test_hexagonal_disk(self):
        topology = CellTopology.hexagonal_disk(2)
        assert topology.num_cells == 19
        degrees = [len(topology.neighbors(cell)) for cell in range(19)]
        assert max(degrees) == 6  # interior cells have six neighbors

    def test_hexagonal_rectangle(self):
        topology = CellTopology.hexagonal_rectangle(3, 4)
        assert topology.num_cells == 12

    def test_line(self):
        topology = CellTopology.line(5)
        assert topology.neighbors(0) == (1,)
        assert topology.neighbors(2) == (1, 3)
        assert topology.hop_distance(0, 4) == 4

    def test_ring(self):
        topology = CellTopology.ring(6)
        assert topology.hop_distance(0, 3) == 3
        assert topology.hop_distance(0, 5) == 1

    def test_torus(self):
        topology = CellTopology.torus(3, 4)
        assert topology.num_cells == 12
        degrees = [len(topology.neighbors(cell)) for cell in range(12)]
        assert all(degree == 4 for degree in degrees)

    def test_grid(self):
        topology = CellTopology.grid(3, 4)
        assert topology.num_cells == 12
        # Corners have 2 neighbors, edges 3, interior 4.
        assert len(topology.neighbors(0)) == 2
        assert len(topology.neighbors(1)) == 3
        assert len(topology.neighbors(5)) == 4
        assert topology.hop_distance(0, 11) == 5  # Manhattan distance
        assert topology.position(5) == (1.0, 1.0)


class TestValidation:
    def test_rejects_disconnected(self):
        graph = nx.Graph()
        graph.add_nodes_from(range(4))
        graph.add_edge(0, 1)
        graph.add_edge(2, 3)
        with pytest.raises(SimulationError, match="connected"):
            CellTopology(graph)

    def test_rejects_non_contiguous_labels(self):
        graph = nx.Graph()
        graph.add_edge(1, 2)
        with pytest.raises(SimulationError, match="contiguous"):
            CellTopology(graph)

    def test_rejects_empty(self):
        with pytest.raises(SimulationError):
            CellTopology(nx.Graph())


class TestDistances:
    def test_hop_distance_matches_networkx(self):
        topology = CellTopology.hexagonal_disk(2)
        lengths = dict(nx.all_pairs_shortest_path_length(topology.graph))
        for source in range(topology.num_cells):
            for target in range(topology.num_cells):
                assert topology.hop_distance(source, target) == lengths[source][target]

    def test_shortest_path_endpoints(self):
        topology = CellTopology.line(6)
        path = topology.shortest_path(1, 4)
        assert path[0] == 1
        assert path[-1] == 4
        assert len(path) == 4

    def test_positions_available_for_geometric_builders(self):
        topology = CellTopology.hexagonal_disk(1)
        assert topology.position(0) is not None
        ringed = CellTopology.ring(4)
        with pytest.raises(SimulationError, match="position"):
            ringed.position(0)
