"""Tests for the fault-injection and resilience layer (repro.cellnet.faults)."""

import numpy as np
import pytest

from repro.cellnet import (
    CellOutage,
    CellTopology,
    CellularSimulator,
    FaultInjector,
    FaultModel,
    LocationAreaPlan,
    RandomWalk,
    RecoveryPolicy,
    ResilientPager,
    SimulationConfig,
)
from repro.cellnet.metrics import LinkUsageMetrics
from repro.errors import SimulationError


def build_simulator(seed=11, **config_overrides):
    rng = np.random.default_rng(seed)
    topology = CellTopology.hexagonal_disk(2)
    plan = LocationAreaPlan.by_bfs(topology, 3)
    models = [RandomWalk(topology, stay_probability=0.3) for _ in range(4)]
    config = SimulationConfig(
        horizon=config_overrides.pop("horizon", 200),
        call_rate=config_overrides.pop("call_rate", 0.1),
        max_paging_rounds=config_overrides.pop("max_paging_rounds", 3),
        reporting=config_overrides.pop("reporting", "la"),
        pager=config_overrides.pop("pager", "heuristic"),
        **config_overrides,
    )
    return CellularSimulator(topology, plan, models, config, rng=rng)


FAULTY = FaultModel(
    page_loss=0.4,
    update_loss=0.2,
    stale_after=10,
    outages=(CellOutage(cell=3, start=50, end=120),),
)


class TestFaultModel:
    def test_default_is_zero(self):
        assert FaultModel().is_zero

    def test_any_knob_deactivates_is_zero(self):
        assert not FaultModel(page_loss=0.1).is_zero
        assert not FaultModel(update_loss=0.1).is_zero
        assert not FaultModel(cell_page_loss={2: 0.5}).is_zero
        assert not FaultModel(stale_after=5).is_zero
        assert not FaultModel(outages=(CellOutage(0, 0, 1),)).is_zero

    def test_zero_valued_overrides_stay_zero(self):
        assert FaultModel(cell_page_loss={2: 0.0}).is_zero

    def test_rejects_bad_probabilities(self):
        with pytest.raises(SimulationError):
            FaultModel(page_loss=1.5)
        with pytest.raises(SimulationError):
            FaultModel(update_loss=-0.1)
        with pytest.raises(SimulationError):
            FaultModel(cell_page_loss={0: 2.0})

    def test_rejects_bad_staleness(self):
        with pytest.raises(SimulationError):
            FaultModel(stale_after=0)

    def test_cell_override_beats_base_rate(self):
        model = FaultModel(page_loss=0.2, cell_page_loss={5: 0.9})
        assert model.loss_probability(5) == pytest.approx(0.9)
        assert model.loss_probability(4) == pytest.approx(0.2)

    def test_outage_window_is_half_open(self):
        outage = CellOutage(cell=1, start=10, end=20)
        assert not outage.active(9)
        assert outage.active(10)
        assert outage.active(19)
        assert not outage.active(20)
        model = FaultModel(outages=(outage,))
        assert model.cell_down(1, 15)
        assert not model.cell_down(1, 25)
        assert not model.cell_down(2, 15)

    def test_rejects_bad_outage(self):
        with pytest.raises(SimulationError):
            CellOutage(cell=-1, start=0, end=1)
        with pytest.raises(SimulationError):
            CellOutage(cell=0, start=5, end=2)
        with pytest.raises(SimulationError):
            FaultModel(outages=((1, 2, 3),))


class TestRecoveryPolicy:
    def test_backoff_doubles(self):
        policy = RecoveryPolicy(max_retries=3, backoff_base=1)
        assert [policy.backoff(k) for k in (1, 2, 3)] == [1, 2, 4]

    def test_reserved_rounds_counts_waits_and_pages(self):
        # retry 1: wait 1 + page 1; retry 2: wait 2 + page 1 -> 5 rounds.
        assert RecoveryPolicy(max_retries=2, backoff_base=1).reserved_rounds() == 5

    def test_timeout_tightens_but_never_extends_budget(self):
        policy = RecoveryPolicy(call_timeout_rounds=2)
        assert policy.budget(5) == 2
        assert policy.budget(1) == 1

    def test_planning_rounds_floor_is_one(self):
        policy = RecoveryPolicy(max_retries=3)
        assert policy.planning_rounds(2) == 1

    def test_validation(self):
        with pytest.raises(SimulationError):
            RecoveryPolicy(max_retries=-1)
        with pytest.raises(SimulationError):
            RecoveryPolicy(backoff_base=0)
        with pytest.raises(SimulationError):
            RecoveryPolicy(call_timeout_rounds=0)


class TestFaultInjector:
    def test_certain_loss_and_certain_delivery(self):
        metrics = LinkUsageMetrics()
        injector = FaultInjector(
            FaultModel(page_loss=1.0), np.random.default_rng(0), metrics
        )
        assert not injector.page_delivered(0, time=0)
        assert metrics.pages_lost == 1
        injector = FaultInjector(FaultModel(), np.random.default_rng(0), metrics)
        assert injector.page_delivered(0, time=0)

    def test_zero_rate_consumes_no_rng_draws(self):
        """The zero-fault path must not perturb the shared RNG stream."""
        rng = np.random.default_rng(7)
        baseline = np.random.default_rng(7).random(3)
        injector = FaultInjector(FaultModel(), rng)
        for _ in range(10):
            assert injector.page_delivered(0, time=0)
            assert injector.update_delivered(time=0)
        assert np.array_equal(rng.random(3), baseline)

    def test_outage_blocks_without_a_draw(self):
        rng = np.random.default_rng(7)
        baseline = np.random.default_rng(7).random(3)
        model = FaultModel(outages=(CellOutage(cell=0, start=0, end=10),))
        injector = FaultInjector(model, rng, LinkUsageMetrics())
        assert not injector.page_delivered(0, time=5)
        assert injector.page_delivered(0, time=15)
        assert np.array_equal(rng.random(3), baseline)


class TestResilientPager:
    def _injector(self, model, seed=0):
        return FaultInjector(model, np.random.default_rng(seed), LinkUsageMetrics())

    def test_rejects_unknown_base_pager(self):
        with pytest.raises(SimulationError, match="pager"):
            ResilientPager("nope", self._injector(FaultModel()))

    def test_no_faults_finds_everyone(self):
        priors = [np.array([0.5, 0.3, 0.2]), np.array([0.2, 0.3, 0.5])]
        pager = ResilientPager("heuristic", self._injector(FaultModel()))
        outcome = pager.search(priors, [0, 1, 2], [2, 0], 3, 5)
        assert outcome.found_cells == {0: 2, 1: 0}
        assert outcome.failed_devices == ()
        assert outcome.complete

    def test_total_loss_degrades_within_budget(self):
        """With every page lost, the search must stop at d and report failures."""
        priors = [np.array([0.6, 0.4])]
        pager = ResilientPager(
            "heuristic",
            self._injector(FaultModel(page_loss=1.0)),
            RecoveryPolicy(max_retries=5),
        )
        outcome = pager.search(priors, [0, 1], [1], 4, 6)
        assert outcome.failed_devices == (0,)
        assert not outcome.complete
        assert outcome.rounds_used <= 4

    @pytest.mark.parametrize("d", [1, 2, 3, 5, 8])
    def test_never_pages_past_round_d(self, d):
        """The delay constraint is a hard cap for every budget and retry mix."""
        priors = [np.array([0.25, 0.25, 0.25, 0.25]) for _ in range(3)]
        pager = ResilientPager(
            "blanket",
            self._injector(FaultModel(page_loss=0.9), seed=d),
            RecoveryPolicy(max_retries=4, backoff_base=1),
        )
        outcome = pager.search(priors, [0, 1, 2, 3], [3, 1, 0], d, 6)
        assert outcome.rounds_used <= d

    def test_retry_recovers_a_lost_page(self):
        """A page lost in round 1 is recovered by the backoff re-page."""
        priors = [np.array([1.0])]
        model = FaultModel(cell_page_loss={0: 0.5})
        # seed chosen so the first draw loses the page and the retry lands
        rng = np.random.default_rng(8)
        assert rng.random() < 0.5 and rng.random() >= 0.5
        pager = ResilientPager(
            "blanket",
            self._injector(model, seed=8),
            RecoveryPolicy(max_retries=1, backoff_base=1),
        )
        outcome = pager.search(priors, [0], [0], 4, 3)
        assert outcome.found_cells == {0: 0}
        assert outcome.retries_used == 1
        assert outcome.rounds_used == 3  # round 1 + wait 1 + retry round

    def test_fallback_sweep_catches_mislaid_device(self):
        """A device outside the candidate set is found by the complement sweep."""
        priors = [np.array([1.0])]
        pager = ResilientPager("blanket", self._injector(FaultModel()))
        outcome = pager.search(priors, [0], [2], 4, 3)
        assert outcome.found_cells == {0: 2}
        assert outcome.used_fallback

    def test_retry_too_expensive_for_budget_is_skipped(self):
        priors = [np.array([1.0])]
        pager = ResilientPager(
            "blanket",
            self._injector(FaultModel(cell_page_loss={0: 1.0})),
            RecoveryPolicy(max_retries=1, backoff_base=5),
        )
        outcome = pager.search(priors, [0], [0], 3, 1)
        assert outcome.retries_used == 0
        assert outcome.rounds_used == 1
        assert outcome.failed_devices == (0,)


class TestSimulatorIntegration:
    def test_zero_fault_model_matches_no_fault_model(self):
        """faults=FaultModel() must be bit-identical to faults=None."""
        baseline = build_simulator().run()
        zeroed = build_simulator(faults=FaultModel()).run()
        assert zeroed.metrics == baseline.metrics
        assert zeroed.summary() == baseline.summary()

    def test_faulty_run_is_reproducible(self):
        first = build_simulator(
            faults=FAULTY, recovery=RecoveryPolicy(max_retries=2), max_paging_rounds=6
        ).run()
        second = build_simulator(
            faults=FAULTY, recovery=RecoveryPolicy(max_retries=2), max_paging_rounds=6
        ).run()
        assert first.metrics == second.metrics
        assert first.summary() == second.summary()

    def test_faulty_calls_respect_delay_budget(self):
        report = build_simulator(
            faults=FAULTY, recovery=RecoveryPolicy(max_retries=2), max_paging_rounds=6
        ).run()
        assert report.metrics.calls_handled > 0
        for record in report.metrics.call_records:
            assert record.rounds_used <= 6

    def test_faults_surface_in_summary(self):
        report = build_simulator(
            faults=FAULTY, recovery=RecoveryPolicy(max_retries=2), max_paging_rounds=6
        ).run()
        summary = report.summary()
        assert summary["pages_lost"] > 0
        assert summary["retry_rounds"] > 0
        for key in ("degraded_calls", "failed_devices", "updates_lost",
                    "outage_pages", "stale_lookups"):
            assert key in summary

    def test_degraded_calls_count_failed_devices(self):
        report = build_simulator(
            faults=FaultModel(page_loss=0.9),
            recovery=RecoveryPolicy(max_retries=1),
            max_paging_rounds=3,
        ).run()
        degraded = [r for r in report.metrics.call_records if r.failed_devices]
        assert len(degraded) == report.metrics.degraded_calls
        assert sum(r.failed_devices for r in degraded) == (
            report.metrics.failed_device_count
        )
        assert report.metrics.degraded_calls > 0

    def test_adaptive_pager_runs_under_faults(self):
        report = build_simulator(
            pager="adaptive", faults=FaultModel(page_loss=0.3)
        ).run()
        assert report.metrics.calls_handled > 0

    def test_stale_registry_forces_wider_searches(self):
        """With near-stationary devices, aging out confirmed fixes must
        register stale lookups (the fix exists but is distrusted)."""
        rng = np.random.default_rng(4)
        topology = CellTopology.hexagonal_disk(2)
        plan = LocationAreaPlan.by_bfs(topology, 3)
        models = [RandomWalk(topology, stay_probability=0.98) for _ in range(4)]
        config = SimulationConfig(
            horizon=300,
            call_rate=0.1,
            max_paging_rounds=3,
            reporting="la",
            pager="heuristic",
            faults=FaultModel(stale_after=2),
        )
        report = CellularSimulator(topology, plan, models, config, rng=rng).run()
        assert report.metrics.stale_lookups > 0

    def test_config_validates_fault_types(self):
        with pytest.raises(SimulationError):
            SimulationConfig(faults="lossy")
        with pytest.raises(SimulationError):
            SimulationConfig(recovery="retry")
