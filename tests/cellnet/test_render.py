"""Unit tests for the ASCII renderer."""

import numpy as np

from repro.cellnet import (
    CellTopology,
    LocationAreaPlan,
    render_cell_map,
    render_location_areas,
    render_strategy,
    strategy_summary,
)
from repro.core import PagingInstance, Strategy, conference_call_heuristic


class TestCellMap:
    def test_every_cell_rendered_once(self):
        topology = CellTopology.hexagonal_disk(2)
        labels = {cell: "X" for cell in range(topology.num_cells)}
        output = render_cell_map(topology, labels)
        assert output.count("X") == topology.num_cells

    def test_legend_appended(self):
        topology = CellTopology.hexagonal_disk(1)
        output = render_cell_map(topology, {0: "A"}, legend="the legend")
        assert output.endswith("the legend")

    def test_non_geometric_fallback(self):
        topology = CellTopology.ring(4)
        output = render_cell_map(topology, {cell: "R" for cell in range(4)})
        assert "cell 0 [R]" in output
        assert "--" in output  # adjacency listing


class TestLocationAreaView:
    def test_symbols_match_plan(self):
        topology = CellTopology.hexagonal_disk(2)
        plan = LocationAreaPlan.by_bfs(topology, 3)
        output = render_location_areas(topology, plan)
        for area in range(plan.num_areas):
            symbol = "0123456789"[area]
            assert output.count(symbol) == len(plan.cells_of(area))


class TestStrategyView:
    def test_round_symbols_cover_cells(self):
        topology = CellTopology.hexagonal_disk(2)
        rng = np.random.default_rng(1)
        matrix = rng.dirichlet(np.ones(topology.num_cells), size=2)
        instance = PagingInstance.from_array(matrix, max_rounds=3)
        plan = conference_call_heuristic(instance)
        output = render_strategy(topology, plan.strategy)
        for round_index, group in enumerate(plan.strategy.groups, start=1):
            assert output.count(str(round_index)) == len(group)

    def test_sub_instance_mapping(self):
        topology = CellTopology.hexagonal_disk(2)
        strategy = Strategy([[0], [1, 2]])
        output = render_strategy(topology, strategy, cell_order=(5, 9, 11))
        map_only = "\n".join(
            line for line in output.splitlines() if not line.startswith("legend")
        )
        # Cells outside the plan render as dots.
        assert map_only.count(".") == topology.num_cells - 3
        assert map_only.count("1") == 1
        assert map_only.count("2") == 2

    def test_summary_lines(self):
        strategy = Strategy([[0, 2], [1]])
        text = strategy_summary(strategy)
        assert "round 1 (2 cells): 0, 2" in text
        assert "round 2 (1 cells): 1" in text
