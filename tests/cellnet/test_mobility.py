"""Unit tests for mobility models."""

import numpy as np
import pytest

from repro.cellnet import (
    CellTopology,
    GravityMobility,
    RandomWalk,
    RandomWaypoint,
    generate_trace,
    stationary_distribution,
)
from repro.errors import SimulationError


@pytest.fixture
def topology():
    return CellTopology.hexagonal_disk(2)


class TestRandomWalk:
    def test_steps_stay_adjacent(self, topology, rng):
        model = RandomWalk(topology, stay_probability=0.2)
        cell = 0
        for _ in range(100):
            nxt = model.step(cell, rng)
            assert nxt == cell or nxt in topology.neighbors(cell)
            cell = nxt

    def test_stay_probability_observed(self, topology, rng):
        model = RandomWalk(topology, stay_probability=0.8)
        stays = sum(1 for _ in range(2_000) if model.step(5, rng) == 5)
        assert 0.74 < stays / 2_000 < 0.86

    def test_rejects_bad_probability(self, topology):
        with pytest.raises(SimulationError):
            RandomWalk(topology, stay_probability=1.0)


class TestRandomWaypoint:
    def test_steps_stay_adjacent_or_pause(self, topology, rng):
        model = RandomWaypoint(topology, pause_probability=0.3)
        cell = 0
        for _ in range(200):
            nxt = model.step(cell, rng)
            assert nxt == cell or nxt in topology.neighbors(cell)
            cell = nxt

    def test_reaches_far_cells(self, topology, rng):
        model = RandomWaypoint(topology, pause_probability=0.0)
        visited = set(generate_trace(model, 0, 400, rng))
        assert len(visited) > topology.num_cells // 2

    def test_rejects_bad_pause(self, topology):
        with pytest.raises(SimulationError):
            RandomWaypoint(topology, pause_probability=-0.1)


class TestGravity:
    def test_biases_toward_attractive_cells(self, topology, rng):
        attraction = np.ones(topology.num_cells)
        attraction[7] = 60.0
        model = GravityMobility(topology, attraction)
        occupancy = stationary_distribution(
            model, topology, samples=4_000, rng=rng
        )
        assert occupancy[7] == max(occupancy)

    def test_rejects_wrong_length(self, topology):
        with pytest.raises(SimulationError, match="per cell"):
            GravityMobility(topology, [1.0, 2.0])

    def test_rejects_non_positive_weights(self, topology):
        with pytest.raises(SimulationError, match="positive"):
            GravityMobility(topology, [0.0] * topology.num_cells)


class TestTraces:
    def test_trace_length(self, topology, rng):
        model = RandomWalk(topology)
        trace = generate_trace(model, 3, 50, rng)
        assert len(trace) == 51
        assert trace[0] == 3

    def test_rejects_negative_steps(self, topology, rng):
        with pytest.raises(SimulationError):
            generate_trace(RandomWalk(topology), 0, -1, rng)

    def test_stationary_distribution_normalized(self, topology, rng):
        model = RandomWalk(topology)
        occupancy = stationary_distribution(model, topology, samples=2_000, rng=rng)
        assert occupancy.sum() == pytest.approx(1.0)
        assert len(occupancy) == topology.num_cells
