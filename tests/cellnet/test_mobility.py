"""Unit tests for mobility models."""

import numpy as np
import pytest

from repro.cellnet import (
    CellTopology,
    GravityMobility,
    RandomWalk,
    RandomWaypoint,
    generate_trace,
    stationary_distribution,
)
from repro.errors import SimulationError


@pytest.fixture
def topology():
    return CellTopology.hexagonal_disk(2)


class TestRandomWalk:
    def test_steps_stay_adjacent(self, topology, rng):
        model = RandomWalk(topology, stay_probability=0.2)
        cell = 0
        for _ in range(100):
            nxt = model.step(cell, rng)
            assert nxt == cell or nxt in topology.neighbors(cell)
            cell = nxt

    def test_stay_probability_observed(self, topology, rng):
        model = RandomWalk(topology, stay_probability=0.8)
        stays = sum(1 for _ in range(2_000) if model.step(5, rng) == 5)
        assert 0.74 < stays / 2_000 < 0.86

    def test_rejects_bad_probability(self, topology):
        with pytest.raises(SimulationError):
            RandomWalk(topology, stay_probability=1.0)


class TestRandomWaypoint:
    def test_steps_stay_adjacent_or_pause(self, topology, rng):
        model = RandomWaypoint(topology, pause_probability=0.3)
        cell = 0
        for _ in range(200):
            nxt = model.step(cell, rng)
            assert nxt == cell or nxt in topology.neighbors(cell)
            cell = nxt

    def test_reaches_far_cells(self, topology, rng):
        model = RandomWaypoint(topology, pause_probability=0.0)
        visited = set(generate_trace(model, 0, 400, rng))
        assert len(visited) > topology.num_cells // 2

    def test_rejects_bad_pause(self, topology):
        with pytest.raises(SimulationError):
            RandomWaypoint(topology, pause_probability=-0.1)


class TestRandomWaypointSharing:
    """One instance = one device; sharing silently corrupted paths."""

    def test_sharing_across_devices_raises(self, topology, rng):
        model = RandomWaypoint(topology, pause_probability=0.0)
        cells = [0, topology.num_cells - 1]
        with pytest.raises(SimulationError, match="shared across devices"):
            for _ in range(50):
                cells = [model.step(cell, rng) for cell in cells]

    def test_clones_prevent_the_divergence(self, topology, rng):
        """The same interleaving is fine with one clone per device."""
        clones = RandomWaypoint(
            topology, pause_probability=0.0
        ).clone_for_devices(2)
        cells = [0, topology.num_cells - 1]
        for _ in range(50):
            cells = [
                clone.step(cell, rng) for clone, cell in zip(clones, cells)
            ]
        for cell in cells:
            assert 0 <= cell < topology.num_cells

    def test_clone_parameters_and_independence(self, topology):
        original = RandomWaypoint(topology, pause_probability=0.35)
        clones = original.clone_for_devices(3)
        assert len(clones) == 3
        assert len({id(clone) for clone in clones}) == 3
        for clone in clones:
            assert clone.pause_probability == original.pause_probability
            assert clone is not original

    def test_clone_count_validated(self, topology):
        with pytest.raises(SimulationError, match="count"):
            RandomWaypoint(topology).clone_for_devices(0)

    def test_reset_allows_reusing_one_instance(self, topology, rng):
        model = RandomWaypoint(topology, pause_probability=0.0)
        generate_trace(model, 0, 30, rng)
        model.reset()
        # a fresh trace from a different start is legitimate after reset
        trace = generate_trace(model, topology.num_cells - 1, 30, rng)
        assert len(trace) == 31

    def test_sequential_traces_from_same_cell_still_work(self, topology, rng):
        """The guard must not false-positive on honest single-device use."""
        model = RandomWaypoint(topology, pause_probability=0.2)
        trace = generate_trace(model, 0, 100, rng)
        generate_trace(model, trace[-1], 100, rng)


class TestGravity:
    def test_biases_toward_attractive_cells(self, topology, rng):
        attraction = np.ones(topology.num_cells)
        attraction[7] = 60.0
        model = GravityMobility(topology, attraction)
        occupancy = stationary_distribution(
            model, topology, samples=4_000, rng=rng
        )
        assert occupancy[7] == max(occupancy)

    def test_rejects_wrong_length(self, topology):
        with pytest.raises(SimulationError, match="per cell"):
            GravityMobility(topology, [1.0, 2.0])

    def test_rejects_non_positive_weights(self, topology):
        with pytest.raises(SimulationError, match="positive"):
            GravityMobility(topology, [0.0] * topology.num_cells)


class TestTraces:
    def test_trace_length(self, topology, rng):
        model = RandomWalk(topology)
        trace = generate_trace(model, 3, 50, rng)
        assert len(trace) == 51
        assert trace[0] == 3

    def test_rejects_negative_steps(self, topology, rng):
        with pytest.raises(SimulationError):
            generate_trace(RandomWalk(topology), 0, -1, rng)

    def test_stationary_distribution_normalized(self, topology, rng):
        model = RandomWalk(topology)
        occupancy = stationary_distribution(model, topology, samples=2_000, rng=rng)
        assert occupancy.sum() == pytest.approx(1.0)
        assert len(occupancy) == topology.num_cells

    def test_stationary_distribution_rejects_zero_samples(self, topology, rng):
        """samples=0 used to return a silent NaN array via 0/0."""
        with pytest.raises(SimulationError, match="samples"):
            stationary_distribution(
                RandomWalk(topology), topology, samples=0, rng=rng
            )

    def test_stationary_distribution_rejects_negative_burn_in(self, topology, rng):
        with pytest.raises(SimulationError, match="burn_in"):
            stationary_distribution(
                RandomWalk(topology), topology, burn_in=-1, rng=rng
            )

    def test_stationary_distribution_never_returns_nan(self, topology, rng):
        occupancy = stationary_distribution(
            RandomWalk(topology), topology, burn_in=0, samples=1, rng=rng
        )
        assert not np.isnan(occupancy).any()
        assert occupancy.sum() == pytest.approx(1.0)
