"""Unit tests for call arrivals and link-usage metrics."""

import pytest

from repro.cellnet import CallRecord, LinkUsageMetrics, PoissonConferenceCalls
from repro.errors import SimulationError


class TestArrivals:
    def test_rate_zero_never_arrives(self, rng):
        process = PoissonConferenceCalls(0.0, 5)
        assert all(
            process.maybe_arrival(t, rng) is None for t in range(200)
        )

    def test_rate_one_always_arrives(self, rng):
        process = PoissonConferenceCalls(1.0, 5)
        request = process.maybe_arrival(3, rng)
        assert request is not None
        assert request.time == 3

    def test_participants_distinct_and_in_range(self, rng):
        process = PoissonConferenceCalls(1.0, 6)
        for t in range(100):
            request = process.maybe_arrival(t, rng)
            assert len(set(request.participants)) == request.size
            assert all(0 <= device < 6 for device in request.participants)
            assert request.size >= 2

    def test_size_weights_respected(self, rng):
        process = PoissonConferenceCalls(1.0, 8, size_weights=(1.0,))
        sizes = {process.maybe_arrival(t, rng).size for t in range(50)}
        assert sizes == {2}

    def test_size_capped_by_device_pool(self, rng):
        process = PoissonConferenceCalls(1.0, 3, size_weights=(1, 1, 1, 1))
        sizes = {process.maybe_arrival(t, rng).size for t in range(100)}
        assert max(sizes) <= 3

    def test_schedule_rate_statistics(self, rng):
        process = PoissonConferenceCalls(0.2, 4)
        schedule = process.sample_schedule(3_000, rng)
        assert 0.15 < len(schedule) / 3_000 < 0.25

    def test_validation(self):
        with pytest.raises(SimulationError):
            PoissonConferenceCalls(1.5, 5)
        with pytest.raises(SimulationError):
            PoissonConferenceCalls(0.1, 1)
        with pytest.raises(SimulationError):
            PoissonConferenceCalls(0.1, 5, size_weights=(0.0,))


class TestMetrics:
    def test_counters_accumulate(self):
        metrics = LinkUsageMetrics()
        metrics.record_report()
        metrics.record_report()
        metrics.record_registration()
        metrics.record_call(CallRecord(1, 2, cells_paged=7, rounds_used=2, used_fallback=False))
        metrics.record_call(CallRecord(2, 3, cells_paged=5, rounds_used=1, used_fallback=True))
        assert metrics.report_messages == 2
        assert metrics.registration_messages == 1
        assert metrics.calls_handled == 2
        assert metrics.cells_paged == 12
        assert metrics.fallback_searches == 1
        assert metrics.rounds_histogram == {2: 1, 1: 1}

    def test_derived_quantities(self):
        metrics = LinkUsageMetrics()
        metrics.record_report()
        metrics.record_call(CallRecord(1, 2, cells_paged=6, rounds_used=3, used_fallback=False))
        assert metrics.mean_cells_per_call == 6.0
        assert metrics.mean_rounds_per_call == 3.0
        assert metrics.total_wireless_messages == 7

    def test_empty_metrics_safe(self):
        metrics = LinkUsageMetrics()
        assert metrics.mean_cells_per_call == 0.0
        assert metrics.mean_rounds_per_call == 0.0
        assert metrics.summary()["calls"] == 0.0
