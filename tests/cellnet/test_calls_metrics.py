"""Unit tests for call arrivals and link-usage metrics."""

import numpy as np
import pytest

from repro.cellnet import CallRecord, LinkUsageMetrics, PoissonConferenceCalls
from repro.errors import SimulationError


class TestArrivals:
    def test_rate_zero_never_arrives(self, rng):
        process = PoissonConferenceCalls(0.0, 5)
        assert all(
            process.maybe_arrival(t, rng) is None for t in range(200)
        )

    def test_rate_one_always_arrives(self, rng):
        process = PoissonConferenceCalls(1.0, 5)
        request = process.maybe_arrival(3, rng)
        assert request is not None
        assert request.time == 3

    def test_participants_distinct_and_in_range(self, rng):
        process = PoissonConferenceCalls(1.0, 6)
        for t in range(100):
            request = process.maybe_arrival(t, rng)
            assert len(set(request.participants)) == request.size
            assert all(0 <= device < 6 for device in request.participants)
            assert request.size >= 2

    def test_size_weights_respected(self, rng):
        process = PoissonConferenceCalls(1.0, 8, size_weights=(1.0,))
        sizes = {process.maybe_arrival(t, rng).size for t in range(50)}
        assert sizes == {2}

    def test_size_capped_by_device_pool(self, rng):
        process = PoissonConferenceCalls(1.0, 3, size_weights=(1, 1, 1, 1))
        sizes = {process.maybe_arrival(t, rng).size for t in range(100)}
        assert max(sizes) <= 3

    def test_schedule_rate_statistics(self, rng):
        process = PoissonConferenceCalls(0.2, 4)
        schedule = process.sample_schedule(3_000, rng)
        assert 0.15 < len(schedule) / 3_000 < 0.25

    def test_validation(self):
        with pytest.raises(SimulationError):
            PoissonConferenceCalls(1.5, 5)
        with pytest.raises(SimulationError):
            PoissonConferenceCalls(0.1, 1)
        with pytest.raises(SimulationError):
            PoissonConferenceCalls(0.1, 5, size_weights=(0.0,))


class TestPoissonMode:
    def test_unknown_mode_rejected(self):
        with pytest.raises(SimulationError):
            PoissonConferenceCalls(0.5, 5, mode="geometric")

    def test_poisson_rate_may_exceed_one(self):
        process = PoissonConferenceCalls(2.5, 5, mode="poisson")
        assert process.mode == "poisson"
        with pytest.raises(SimulationError):
            PoissonConferenceCalls(-0.1, 5, mode="poisson")

    def test_maybe_arrival_refused_in_poisson_mode(self, rng):
        process = PoissonConferenceCalls(0.5, 5, mode="poisson")
        with pytest.raises(SimulationError):
            process.maybe_arrival(0, rng)

    def test_multiple_arrivals_per_step(self, rng):
        process = PoissonConferenceCalls(3.0, 8, mode="poisson")
        counts = [len(process.arrivals(t, rng)) for t in range(200)]
        assert max(counts) > 1  # the whole point of the mode
        assert 2.5 < sum(counts) / 200 < 3.5

    def test_poisson_arrivals_seeded(self):
        def draw(seed):
            process = PoissonConferenceCalls(1.5, 6, mode="poisson")
            rng = np.random.default_rng(seed)
            return [
                (r.time, r.participants)
                for t in range(50)
                for r in process.arrivals(t, rng)
            ]

        assert draw(3) == draw(3)
        assert draw(3) != draw(4)

    def test_bernoulli_arrivals_wraps_maybe_arrival_draw_identically(self):
        process = PoissonConferenceCalls(0.4, 6)
        rng_a = np.random.default_rng(17)
        rng_b = np.random.default_rng(17)
        for t in range(100):
            single = process.maybe_arrival(t, rng_a)
            many = process.arrivals(t, rng_b)
            assert many == ([] if single is None else [single])
        # streams advanced identically
        assert rng_a.bit_generator.state == rng_b.bit_generator.state


class TestMetrics:
    def test_counters_accumulate(self):
        metrics = LinkUsageMetrics()
        metrics.record_report()
        metrics.record_report()
        metrics.record_registration()
        metrics.record_call(CallRecord(1, 2, cells_paged=7, rounds_used=2, used_fallback=False))
        metrics.record_call(CallRecord(2, 3, cells_paged=5, rounds_used=1, used_fallback=True))
        assert metrics.report_messages == 2
        assert metrics.registration_messages == 1
        assert metrics.calls_handled == 2
        assert metrics.cells_paged == 12
        assert metrics.fallback_searches == 1
        assert metrics.rounds_histogram == {2: 1, 1: 1}

    def test_derived_quantities(self):
        metrics = LinkUsageMetrics()
        metrics.record_report()
        metrics.record_call(CallRecord(1, 2, cells_paged=6, rounds_used=3, used_fallback=False))
        assert metrics.mean_cells_per_call == 6.0
        assert metrics.mean_rounds_per_call == 3.0
        assert metrics.total_wireless_messages == 7

    def test_empty_metrics_safe(self):
        metrics = LinkUsageMetrics()
        assert metrics.mean_cells_per_call == 0.0
        assert metrics.mean_rounds_per_call == 0.0
        assert metrics.summary()["calls"] == 0.0

    def test_record_calls_opt_out_keeps_summary_identical(self):
        records = [
            CallRecord(1, 2, cells_paged=7, rounds_used=2, used_fallback=False),
            CallRecord(4, 3, cells_paged=5, rounds_used=1, used_fallback=True,
                       retries=1, setup_latency=3),
            CallRecord(9, 2, cells_paged=12, rounds_used=3, used_fallback=False,
                       failed_devices=1, setup_latency=6),
        ]
        kept = LinkUsageMetrics(record_calls=True)
        dropped = LinkUsageMetrics(record_calls=False)
        for metrics in (kept, dropped):
            metrics.record_report()
            for record in records:
                metrics.record_call(record)
        assert kept.summary() == dropped.summary()
        assert len(kept.call_records) == 3
        assert dropped.call_records == []

    def test_contention_keys_gated(self):
        legacy = LinkUsageMetrics()
        contended = LinkUsageMetrics(contention=True)
        assert "blocking_probability" not in legacy.summary()
        assert "blocking_probability" in contended.summary()
        # the legacy key set is exactly the pre-engine one
        assert set(legacy.summary()) < set(contended.summary())

    def test_blocking_probability(self):
        metrics = LinkUsageMetrics(contention=True)
        assert metrics.blocking_probability == 0.0  # no offered calls yet
        for _ in range(8):
            metrics.record_offered_call()
        metrics.record_blocked_call(waited_steps=9)
        metrics.record_blocked_call(waited_steps=12)
        assert metrics.blocked_calls == 2
        assert metrics.blocking_probability == pytest.approx(0.25)

    def test_latency_percentiles_nearest_rank(self):
        metrics = LinkUsageMetrics(contention=True)
        for latency in (0, 0, 1, 2, 2, 2, 5, 9, 40, 41):
            metrics.record_call(
                CallRecord(0, 2, cells_paged=1, rounds_used=1,
                           used_fallback=False, setup_latency=latency)
            )
        assert metrics.setup_latency_percentile(50) == pytest.approx(2.0)
        assert metrics.setup_latency_percentile(90) == pytest.approx(40.0)
        assert metrics.setup_latency_percentile(95) == pytest.approx(41.0)
        assert metrics.setup_latency_percentile(99) == pytest.approx(41.0)
        assert metrics.setup_latency_percentile(100) == pytest.approx(41.0)

    def test_channel_occupancy_histogram(self):
        metrics = LinkUsageMetrics(contention=True)
        metrics.record_occupancy([2, 0, 1])
        metrics.record_occupancy([2, 2, 0])
        assert metrics.channel_occupancy == {0: 2, 1: 1, 2: 3}
        assert metrics.mean_channel_occupancy == pytest.approx(7 / 6)
