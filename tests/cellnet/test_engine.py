"""Unit and determinism tests for the event-driven contention engine."""

import numpy as np
import pytest

from repro.cellnet import (
    CellOutage,
    CellTopology,
    CellularSimulator,
    ChannelResource,
    Event,
    EventEngine,
    FaultModel,
    LocationAreaPlan,
    RandomWalk,
    RecoveryPolicy,
    SimulationConfig,
)
from repro.cellnet.engine import (
    ARRIVAL,
    MOVEMENT,
    OUTAGE_START,
    PAGING_ROUND,
)
from repro.errors import SimulationError
from repro.obs import MemorySink, Tracer, use_tracer


class TestEventEngine:
    def test_unknown_kind_rejected(self):
        with pytest.raises(SimulationError):
            Event(1, "teleport")
        engine = EventEngine()
        with pytest.raises(SimulationError):
            engine.on("teleport", lambda event: None)

    def test_dispatch_order_time_then_priority_then_seq(self):
        engine = EventEngine()
        order = []
        for kind in (MOVEMENT, ARRIVAL, PAGING_ROUND, OUTAGE_START):
            engine.on(kind, lambda event: order.append((event.time, event.kind)))
        # scheduled deliberately out of order
        engine.schedule(Event(2, MOVEMENT))
        engine.schedule(Event(1, PAGING_ROUND))
        engine.schedule(Event(1, MOVEMENT))
        engine.schedule(Event(1, OUTAGE_START))
        engine.schedule(Event(1, ARRIVAL))
        engine.run(horizon=5)
        assert order == [
            (1, OUTAGE_START),
            (1, MOVEMENT),
            (1, ARRIVAL),
            (1, PAGING_ROUND),
            (2, MOVEMENT),
        ]

    def test_same_kind_same_time_fifo(self):
        engine = EventEngine()
        seen = []
        engine.on(ARRIVAL, lambda event: seen.append(event.payload))
        for tag in ("a", "b", "c"):
            engine.schedule(Event(3, ARRIVAL, tag))
        engine.run(horizon=3)
        assert seen == ["a", "b", "c"]

    def test_cannot_schedule_into_the_past(self):
        engine = EventEngine()
        engine.on(MOVEMENT, lambda event: None)
        engine.schedule(Event(5, MOVEMENT))
        engine.run(horizon=5)
        with pytest.raises(SimulationError):
            engine.schedule(Event(2, MOVEMENT))

    def test_horizon_cuts_off_later_events(self):
        engine = EventEngine()
        fired = []
        engine.on(MOVEMENT, lambda event: fired.append(event.time))
        engine.schedule(Event(1, MOVEMENT))
        engine.schedule(Event(9, MOVEMENT))
        engine.run(horizon=5)
        assert fired == [1]
        assert engine.queue_depth == 1
        assert engine.events_dispatched == 1

    def test_missing_handler_is_an_error(self):
        engine = EventEngine()
        engine.schedule(Event(1, MOVEMENT))
        with pytest.raises(SimulationError):
            engine.run(horizon=1)


class TestChannelResource:
    def test_slots_are_capacity_times_carriers(self):
        resource = ChannelResource(num_cells=3, capacity=2, carriers=2)
        resource.begin_round()
        assert [resource.acquire(0) for _ in range(5)] == [
            True, True, True, True, False,
        ]
        assert resource.used(0) == 4
        assert resource.acquire(1)  # other cells unaffected

    def test_begin_round_resets_usage(self):
        resource = ChannelResource(num_cells=2, capacity=1)
        resource.begin_round()
        assert resource.acquire(0)
        assert not resource.acquire(0)
        resource.begin_round()
        assert resource.acquire(0)

    def test_down_cell_offers_zero_slots(self):
        resource = ChannelResource(num_cells=2, capacity=4)
        resource.begin_round()
        resource.set_down(1, True)
        assert not resource.acquire(1)
        resource.set_down(1, False)
        assert resource.acquire(1)

    def test_occupancy_snapshot(self):
        resource = ChannelResource(num_cells=3, capacity=2)
        resource.begin_round()
        resource.acquire(0)
        resource.acquire(0)
        resource.acquire(2)
        assert resource.occupancy_snapshot() == [2, 0, 1]
        assert resource.used_total == 3

    def test_validation(self):
        with pytest.raises(SimulationError):
            ChannelResource(num_cells=0, capacity=1)
        with pytest.raises(SimulationError):
            ChannelResource(num_cells=1, capacity=0)
        with pytest.raises(SimulationError):
            ChannelResource(num_cells=1, capacity=1, carriers=0)


def build_contention_simulator(
    *,
    capacity=1,
    carriers=1,
    call_rate=0.6,
    horizon=250,
    seed=11,
    devices=8,
    **overrides,
):
    rng = np.random.default_rng(seed)
    topology = CellTopology.hexagonal_disk(2)
    plan = LocationAreaPlan.by_bfs(topology, 3)
    models = [RandomWalk(topology, stay_probability=0.3) for _ in range(devices)]
    config = SimulationConfig(
        horizon=horizon,
        call_rate=call_rate,
        max_paging_rounds=3,
        channel_capacity=capacity,
        carriers=carriers,
        arrival_mode="poisson",
        **overrides,
    )
    return CellularSimulator(topology, plan, models, config, rng=rng)


class TestContentionBehavior:
    def test_same_seed_runs_are_bit_identical(self):
        first = build_contention_simulator().run()
        second = build_contention_simulator().run()
        assert first.summary() == second.summary()
        records = lambda report: [  # noqa: E731 - local shorthand
            (r.time, r.participants, r.cells_paged, r.rounds_used,
             r.setup_latency, r.retries)
            for r in report.metrics.call_records
        ]
        assert records(first) == records(second)

    def test_every_offered_call_is_accounted(self):
        report = build_contention_simulator(call_rate=1.0).run()
        metrics = report.metrics
        assert metrics.offered_calls > 0
        assert metrics.calls_handled + metrics.blocked_calls == metrics.offered_calls

    def test_blocking_rises_with_offered_load(self):
        low = build_contention_simulator(call_rate=0.2).run()
        high = build_contention_simulator(call_rate=1.5).run()
        assert (
            high.metrics.blocking_probability
            > low.metrics.blocking_probability
        )
        assert high.metrics.blocking_probability > 0.1

    def test_blocking_falls_with_more_carriers(self):
        single = build_contention_simulator(call_rate=1.5, carriers=1).run()
        triple = build_contention_simulator(call_rate=1.5, carriers=3).run()
        assert (
            triple.metrics.blocking_probability
            < single.metrics.blocking_probability
        )

    def test_latency_percentiles_monotone(self):
        metrics = build_contention_simulator().run().metrics
        p50 = metrics.setup_latency_percentile(50)
        p95 = metrics.setup_latency_percentile(95)
        p99 = metrics.setup_latency_percentile(99)
        assert 0 <= p50 <= p95 <= p99

    def test_contention_summary_keys_present(self):
        summary = build_contention_simulator(horizon=60).run().summary()
        for key in (
            "offered_calls",
            "blocked_calls",
            "blocking_probability",
            "deferred_steps",
            "setup_latency_p50",
            "setup_latency_p95",
            "setup_latency_p99",
            "mean_channel_occupancy",
        ):
            assert key in summary

    def test_outage_interacts_with_contention(self):
        faults = FaultModel(outages=(CellOutage(cell=0, start=1, end=400),))
        clean = build_contention_simulator(call_rate=1.0).run()
        outaged = build_contention_simulator(
            call_rate=1.0,
            faults=faults,
            recovery=RecoveryPolicy(max_retries=1, backoff_base=1),
        ).run()
        # a dead cell sheds capacity: more calls starve past the wait budget
        assert outaged.metrics.blocked_calls > clean.metrics.blocked_calls
        assert (
            outaged.metrics.blocking_probability
            > clean.metrics.blocking_probability
        )

    def test_retries_compete_for_slots(self):
        report = build_contention_simulator(
            call_rate=0.8,
            faults=FaultModel(page_loss=0.3),
            recovery=RecoveryPolicy(max_retries=2, backoff_base=2),
        ).run()
        assert report.metrics.retry_rounds > 0

    def test_blanket_pager_under_contention(self):
        report = build_contention_simulator(pager="blanket", horizon=120).run()
        assert report.metrics.calls_handled > 0

    def test_engine_obs_events_emitted(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        with use_tracer(tracer, close=False):
            build_contention_simulator(horizon=80).run()
        tracer.flush()
        names = {event.get("name") for event in sink.events}
        assert f"engine.events.{MOVEMENT}" in names
        assert f"engine.events.{ARRIVAL}" in names
        assert f"engine.events.{PAGING_ROUND}" in names
        assert "engine.queue_depth" in names
        assert "engine.pages_sent" in names
        assert "engine.slot_occupancy" in names

    def test_config_validation(self):
        with pytest.raises(SimulationError):
            SimulationConfig(channel_capacity=0)
        with pytest.raises(SimulationError):
            SimulationConfig(carriers=0)
        with pytest.raises(SimulationError):
            SimulationConfig(max_wait=-1)
        with pytest.raises(SimulationError):
            SimulationConfig(arrival_mode="weibull")
