"""Unit tests for location-area dimensioning."""

import pytest

from repro.cellnet import (
    AreaSweepPoint,
    best_operating_point,
    sweep_location_area_sizes,
)
from repro.errors import SimulationError


class TestSweep:
    def test_returns_one_point_per_count(self):
        points = sweep_location_area_sizes(
            radius=2, area_counts=(1, 3), horizon=120, seed=5
        )
        assert [point.num_areas for point in points] == [1, 3]

    def test_single_area_never_reports(self):
        (point,) = sweep_location_area_sizes(
            radius=2, area_counts=(1,), horizon=120, seed=5
        )
        assert point.reports == 0
        assert point.mean_area_size == 19.0

    def test_more_areas_more_reports(self):
        points = sweep_location_area_sizes(
            radius=2, area_counts=(2, 8), horizon=150, seed=5
        )
        assert points[1].reports > points[0].reports

    def test_heuristic_pages_fewer_cells_than_blanket(self):
        blanket = sweep_location_area_sizes(
            radius=2, area_counts=(2,), horizon=150, pager="blanket", seed=5
        )[0]
        heuristic = sweep_location_area_sizes(
            radius=2, area_counts=(2,), horizon=150, pager="heuristic", seed=5
        )[0]
        assert heuristic.cells_paged <= blanket.cells_paged
        assert heuristic.reports == blanket.reports  # same mobility stream

    def test_rejects_empty_sweep(self):
        with pytest.raises(SimulationError):
            sweep_location_area_sizes(area_counts=())

    def test_rejects_oversized_count(self):
        with pytest.raises(SimulationError, match="cannot split"):
            sweep_location_area_sizes(radius=1, area_counts=(99,), horizon=50)


class TestBestPoint:
    def test_picks_minimum(self):
        points = [
            AreaSweepPoint(1, 19.0, 0, 900, 900, 30),
            AreaSweepPoint(4, 4.75, 300, 400, 700, 30),
            AreaSweepPoint(16, 1.2, 800, 100, 900, 30),
        ]
        assert best_operating_point(points).num_areas == 4

    def test_rejects_empty(self):
        with pytest.raises(SimulationError):
            best_operating_point([])
