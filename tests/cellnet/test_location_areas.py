"""Unit tests for location-area plans."""

import pytest

from repro.cellnet import CellTopology, LocationAreaPlan
from repro.errors import SimulationError


class TestValidation:
    def test_valid_partition(self):
        plan = LocationAreaPlan([[0, 1], [2, 3]], 4)
        assert plan.num_areas == 2

    def test_rejects_overlap(self):
        with pytest.raises(SimulationError, match="overlap"):
            LocationAreaPlan([[0, 1], [1, 2]], 3)

    def test_rejects_uncovered_cells(self):
        with pytest.raises(SimulationError, match="cover"):
            LocationAreaPlan([[0, 1]], 3)

    def test_rejects_empty_area(self):
        with pytest.raises(SimulationError, match="empty"):
            LocationAreaPlan([[0, 1], []], 2)


class TestLookups:
    def test_area_of_and_cells_of(self):
        plan = LocationAreaPlan([[0, 2], [1, 3]], 4)
        assert plan.area_of(2) == 0
        assert plan.cells_of(1) == (1, 3)

    def test_crosses_boundary(self):
        plan = LocationAreaPlan([[0, 1], [2, 3]], 4)
        assert plan.crosses_boundary(1, 2)
        assert not plan.crosses_boundary(0, 1)

    def test_sizes(self):
        plan = LocationAreaPlan([[0], [1, 2, 3]], 4)
        assert plan.sizes() == (1, 3)

    def test_unknown_cell_rejected(self):
        plan = LocationAreaPlan([[0]], 1)
        with pytest.raises(SimulationError):
            plan.area_of(5)


class TestBuilders:
    def test_single_area(self):
        plan = LocationAreaPlan.single_area(5)
        assert plan.num_areas == 1
        assert plan.cells_of(0) == (0, 1, 2, 3, 4)

    def test_by_blocks(self):
        plan = LocationAreaPlan.by_blocks(10, 4)
        assert plan.sizes() == (4, 4, 2)
        assert plan.area_of(9) == 2

    def test_by_blocks_rejects_bad_size(self):
        with pytest.raises(SimulationError):
            LocationAreaPlan.by_blocks(10, 0)

    def test_by_bfs_covers_everything(self):
        topology = CellTopology.hexagonal_disk(3)
        plan = LocationAreaPlan.by_bfs(topology, 4)
        assert plan.num_areas == 4
        assert sum(plan.sizes()) == topology.num_cells

    def test_by_bfs_areas_are_connected(self):
        import networkx as nx

        topology = CellTopology.hexagonal_disk(3)
        plan = LocationAreaPlan.by_bfs(topology, 5)
        for area in range(plan.num_areas):
            cells = plan.cells_of(area)
            subgraph = topology.graph.subgraph(cells)
            assert nx.is_connected(subgraph), f"area {area} disconnected: {cells}"

    def test_by_bfs_balanced_sizes(self):
        topology = CellTopology.hexagonal_disk(3)
        plan = LocationAreaPlan.by_bfs(topology, 4)
        sizes = plan.sizes()
        assert max(sizes) - min(sizes) <= topology.num_cells // 3

    def test_by_bfs_random_seeds(self, rng):
        topology = CellTopology.hexagonal_disk(2)
        plan = LocationAreaPlan.by_bfs(topology, 3, rng=rng)
        assert sum(plan.sizes()) == topology.num_cells

    def test_by_bfs_rejects_bad_count(self):
        topology = CellTopology.line(4)
        with pytest.raises(SimulationError):
            LocationAreaPlan.by_bfs(topology, 9)
