"""Unit tests for hexagonal geometry."""

import pytest

from repro.cellnet import Hex, hex_disk, hex_rectangle, ring


class TestHex:
    def test_cube_coordinate_invariant(self):
        position = Hex(2, -1)
        assert position.q + position.r + position.s == 0

    def test_six_neighbors(self):
        neighbors = Hex(0, 0).neighbors()
        assert len(set(neighbors)) == 6
        assert all(Hex(0, 0).distance(n) == 1 for n in neighbors)

    def test_distance_symmetry(self):
        a, b = Hex(0, 0), Hex(3, -2)
        assert a.distance(b) == b.distance(a) == 3

    def test_distance_triangle_inequality(self):
        a, b, c = Hex(0, 0), Hex(2, 1), Hex(-1, 3)
        assert a.distance(c) <= a.distance(b) + b.distance(c)

    def test_cartesian_positions_distinct(self):
        points = {h.to_cartesian() for h in hex_disk(2)}
        assert len(points) == len(hex_disk(2))


class TestDisk:
    @pytest.mark.parametrize("radius,expected", [(0, 1), (1, 7), (2, 19), (3, 37)])
    def test_disk_size_formula(self, radius, expected):
        assert len(hex_disk(radius)) == expected

    def test_disk_within_radius(self):
        center = Hex(0, 0)
        for cell in hex_disk(2):
            assert center.distance(cell) <= 2

    def test_negative_radius_rejected(self):
        with pytest.raises(ValueError):
            hex_disk(-1)


class TestRectangle:
    def test_size(self):
        assert len(hex_rectangle(3, 4)) == 12

    def test_unique_positions(self):
        cells = hex_rectangle(4, 5)
        assert len(set(cells)) == 20

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            hex_rectangle(0, 3)


class TestRing:
    def test_ring_zero_is_center(self):
        assert list(ring(Hex(0, 0), 0)) == [Hex(0, 0)]

    @pytest.mark.parametrize("radius", [1, 2, 3])
    def test_ring_size_and_distance(self, radius):
        cells = list(ring(Hex(0, 0), radius))
        assert len(cells) == 6 * radius
        assert all(Hex(0, 0).distance(cell) == radius for cell in cells)
