"""Bit-identity of the engine façade with the pre-engine step loop.

The golden digests below were recorded by running the *pre-refactor*
``CellularSimulator`` (the hand-written ``for time in range(...)`` loop,
commit ``82d69e1``) over sixteen representative configurations: every
pager, every reporting policy, both learned-prior ablations, call
durations, and three fault/recovery mixes, across three mobility models.
Each digest hashes the run's full summary dict *plus the next eight rng
draws after the run* (so the stream position is pinned, not just the
outputs), and a second digest hashes the per-call record tuples.

The refactored simulator routes the same configurations through
:class:`repro.cellnet.engine.EventEngine` (``channel_capacity=None``).
These tests are the contract that the engine schedule replays the legacy
loop event for event — any reordering of rng draws, any changed summary
key, any perturbed call record breaks a digest.  If you change simulator
semantics *on purpose*, re-record the digests and say so in the commit.
"""

import hashlib
import json

import numpy as np
import pytest

from repro.cellnet import (
    CellOutage,
    CellTopology,
    CellularSimulator,
    FaultModel,
    GravityMobility,
    LocationAreaPlan,
    RandomWalk,
    RandomWaypoint,
    RecoveryPolicy,
    SimulationConfig,
)

# scenario -> (config overrides, mobility model kind)
SCENARIOS = {
    "baseline_la_heuristic": (dict(), "walk"),
    "blanket": (dict(pager="blanket"), "walk"),
    "adaptive": (dict(pager="adaptive"), "walk"),
    "always_reporting": (dict(reporting="always"), "walk"),
    "never_reporting": (dict(reporting="never"), "walk"),
    "timer_reporting": (dict(reporting="timer", timer_period=7), "walk"),
    "distance_reporting": (dict(reporting="distance", distance_threshold=2), "walk"),
    "uniform_prior": (dict(prior_mode="uniform"), "walk"),
    "conditional_prior": (
        dict(prior_mode="conditional", reporting="distance"),
        "walk",
    ),
    "call_durations": (dict(mean_call_duration=4), "walk"),
    "faults_page_loss": (
        dict(
            faults=FaultModel(page_loss=0.2),
            recovery=RecoveryPolicy(max_retries=2),
        ),
        "walk",
    ),
    "faults_everything": (
        dict(
            faults=FaultModel(
                page_loss=0.1,
                update_loss=0.15,
                stale_after=10,
                outages=(CellOutage(cell=2, start=20, end=60),),
                cell_page_loss={1: 0.5},
            ),
            recovery=RecoveryPolicy(max_retries=1, backoff_base=1),
        ),
        "walk",
    ),
    "faults_blanket": (
        dict(pager="blanket", faults=FaultModel(page_loss=0.3)),
        "walk",
    ),
    "heuristic_batch": (dict(pager="heuristic-batch"), "walk"),
    "gravity_conditional": (
        dict(prior_mode="conditional", reporting="distance", transition_samples=500),
        "gravity",
    ),
    "waypoint_timer": (dict(reporting="timer", timer_period=5), "waypoint"),
}

# scenario -> (sha256 of [summary, 8-draw rng tail], sha256 of call records)
GOLDEN_DIGESTS = {
    "adaptive": ("c13b3eb8612627d4bd56615b7db3de26f915b16fd46437c3c6325a6b89d88e8c", "6cfaa040bb68ce36b73afe3138f74a2f5b8ddc27646d7997b3c1a352b6d7d368"),
    "always_reporting": ("b6a35b81eb5301c00d4aa709b22bbbbd6565d1216640437516cf1c63c34ea527", "be2b09881c98d4897efee7d944efd551bcb024e0cb7d93f0af4a319c813325d0"),
    "baseline_la_heuristic": ("8cd78ef9aac980c9070815f7e1ac9aada38496ace6371d750fd00c399a2c3399", "1327599380753bd66d105c7b839420abbd38487eb0d1785008b807f3a310e8da"),
    "blanket": ("b7e52ed385ed08f1c8e55ec2edd27efddae6ad1a08b14776b2854c7499139807", "0ce48a5234f4985219c8bce8e3ccb06a9d3897e5d4d0b7e6bbab34b5d8c0436a"),
    "call_durations": ("2a20cd231f56cf9e52b0caad0ad8df7129c0d8c55dd40c794273752f451c00d3", "fa3a400a2910953c0587f38d149241122b4302d58eb1c55dda1d11bb8e70d03f"),
    "conditional_prior": ("fa71758905170ea307788395afa498f1d5913fc78249128dc76c1e7d208905e1", "259fb6104c1979523370bceb49899a7b638eb32542646b46200005a2ea7102f0"),
    "distance_reporting": ("171fa3626873bb4cc87b754e43bf470f0a2a3bde7d906bb571c6e8881697660a", "8a89727a6f212bcdc621d2e3523a3a7601e8fe03e5176d395e336077a0ae02ee"),
    "faults_blanket": ("e903770eb501d905a0a142d6bff252385a5722f701151e97694e3bfc0ed2a19e", "daab4f38fa41ea3aface83184c633d0265a56966350d5c3b2f48b7d344d57b80"),
    "faults_everything": ("c5e6c241bfddc928bc357c773dd35b039e00d7547292178c6c79c9e3e7f897d3", "b7362661f1b138f5fc9a81e1da8471d87312146f407b6d71ac4611e0913bd9e6"),
    "faults_page_loss": ("a7552ed916c605db1586b4f0bb0e4761551c669b6142547d41ca8c762e9bb1a6", "6e21032b35c9c728fe92d83feeff9ca59e5cd10b90ca50a02d9d419226e93c9a"),
    "gravity_conditional": ("7442f51c037145173466022ac64aaa70ae04259548f74038e7de7c9239356abf", "7d8c79f2f13e3882b3a7ed097fa78fa6ec1882a77c4e7f41717d0264df0a421e"),
    "heuristic_batch": ("8cd78ef9aac980c9070815f7e1ac9aada38496ace6371d750fd00c399a2c3399", "1327599380753bd66d105c7b839420abbd38487eb0d1785008b807f3a310e8da"),
    "never_reporting": ("a4b5ad24e9e7100432391d6f4228b89680ed63bffa438b3c132e10da52bd1c9e", "5163a6adb6d4043d17d49cf902b91e014268319927ce86b82f1f20897712386d"),
    "timer_reporting": ("1e8c61bd7bd0c5e834def623c2980d51d40d03f8491314a9fbd901ecd718b96f", "5163a6adb6d4043d17d49cf902b91e014268319927ce86b82f1f20897712386d"),
    "uniform_prior": ("239d7cadb384d7bbe4bc4adf0403dedd68379d2f66406eb7e5a9036b65a80a19", "cb5d92f20128222b172573eee598ddaac466bd58cd455457ac6d6224264fa712"),
    "waypoint_timer": ("2778ea1cbfd86057756d5933ca0d4edc45db269bce7dabce461c42e8311b0c07", "67e7b89af127486bee5aa6578d575a86802aa3e29eedd8d90ed88b2a5cbbe5da"),
}

SEED = 11


def _run_scenario(overrides, model_kind):
    overrides = dict(overrides)
    rng = np.random.default_rng(SEED)
    topology = CellTopology.hexagonal_disk(2)
    plan = LocationAreaPlan.by_bfs(topology, 3)
    if model_kind == "walk":
        models = [RandomWalk(topology, stay_probability=0.3) for _ in range(4)]
    elif model_kind == "gravity":
        attraction = np.random.default_rng(SEED + 1).uniform(
            0.5, 3.0, size=topology.num_cells
        )
        models = [GravityMobility(topology, attraction) for _ in range(4)]
    else:
        models = [RandomWaypoint(topology) for _ in range(4)]
    config = SimulationConfig(
        horizon=160,
        call_rate=0.12,
        max_paging_rounds=3,
        **overrides,
    )
    simulator = CellularSimulator(topology, plan, models, config, rng=rng)
    report = simulator.run()
    summary = report.summary()
    tail = [float(rng.random()) for _ in range(8)]
    digest = hashlib.sha256(
        json.dumps([summary, tail], sort_keys=True).encode()
    ).hexdigest()
    records = [
        (
            record.time,
            record.participants,
            record.cells_paged,
            record.rounds_used,
            record.used_fallback,
            record.failed_devices,
            record.retries,
        )
        for record in report.metrics.call_records
    ]
    records_digest = hashlib.sha256(json.dumps(records).encode()).hexdigest()
    return digest, records_digest


class TestLegacyEquivalence:
    """channel_capacity=None replays the pre-engine loop byte for byte."""

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_scenario_matches_golden(self, name):
        overrides, model_kind = SCENARIOS[name]
        digest, records_digest = _run_scenario(overrides, model_kind)
        expected_digest, expected_records = GOLDEN_DIGESTS[name]
        assert digest == expected_digest, (
            f"{name}: summary/rng-stream digest drifted from the "
            "pre-engine simulator — the engine schedule no longer replays "
            "the legacy step loop bit-identically"
        )
        assert records_digest == expected_records, (
            f"{name}: per-call records drifted from the pre-engine simulator"
        )

    def test_every_scenario_is_pinned(self):
        assert set(SCENARIOS) == set(GOLDEN_DIGESTS)

    def test_legacy_summary_has_no_contention_keys(self):
        overrides, model_kind = SCENARIOS["baseline_la_heuristic"]
        rng = np.random.default_rng(SEED)
        topology = CellTopology.hexagonal_disk(2)
        plan = LocationAreaPlan.by_bfs(topology, 3)
        models = [RandomWalk(topology, stay_probability=0.3) for _ in range(4)]
        config = SimulationConfig(horizon=40, call_rate=0.12)
        simulator = CellularSimulator(topology, plan, models, config, rng=rng)
        summary = simulator.run().summary()
        assert "blocking_probability" not in summary
        assert "offered_calls" not in summary
