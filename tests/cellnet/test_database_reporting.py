"""Unit tests for the location registry and reporting policies."""

import pytest

from repro.cellnet import (
    AlwaysReport,
    CellTopology,
    DistanceReport,
    LACrossingReport,
    LocationAreaPlan,
    LocationRegistry,
    MoveContext,
    NeverReport,
    TimerReport,
)
from repro.errors import SimulationError


class TestRegistry:
    def test_register_and_lookup(self):
        registry = LocationRegistry()
        registry.register(0, area=1, cell=5, time=0)
        record = registry.lookup(0)
        assert record.reported_area == 1
        assert record.reported_cell == 5
        assert record.confirmed_cell is None

    def test_report_updates_belief(self):
        registry = LocationRegistry()
        registry.register(0, area=0, cell=0, time=0)
        registry.report(0, area=2, cell=9, time=5)
        record = registry.lookup(0)
        assert record.reported_area == 2
        assert record.updated_at == 5
        assert registry.updates_processed == 1

    def test_confirmation_cycle(self):
        registry = LocationRegistry()
        registry.register(0, area=0, cell=0, time=0)
        registry.confirm(0, cell=3, area=1, time=2)
        assert registry.lookup(0).confirmed_cell == 3
        registry.invalidate_confirmation(0)
        assert registry.lookup(0).confirmed_cell is None

    def test_unknown_device_rejected(self):
        registry = LocationRegistry()
        with pytest.raises(SimulationError, match="registered"):
            registry.lookup(9)

    def test_known_devices_sorted(self):
        registry = LocationRegistry()
        registry.register(3, 0, 0, 0)
        registry.register(1, 0, 0, 0)
        assert registry.known_devices() == (1, 3)


def move(old, new, *, last=None, steps=1, time=1):
    return MoveContext(
        device=0,
        old_cell=old,
        new_cell=new,
        time=time,
        last_reported_cell=last,
        steps_since_report=steps,
    )


class TestPolicies:
    def test_never(self):
        assert not NeverReport().should_report(move(0, 5))

    def test_always(self):
        policy = AlwaysReport()
        assert policy.should_report(move(0, 1))
        assert not policy.should_report(move(2, 2))

    def test_la_crossing(self):
        plan = LocationAreaPlan([[0, 1], [2, 3]], 4)
        policy = LACrossingReport(plan)
        assert policy.should_report(move(1, 2))
        assert not policy.should_report(move(0, 1))

    def test_distance(self):
        topology = CellTopology.line(6)
        policy = DistanceReport(topology, threshold=2)
        assert not policy.should_report(move(0, 1, last=0))
        assert policy.should_report(move(1, 2, last=0))
        assert policy.should_report(move(0, 1, last=None))  # never reported yet

    def test_distance_rejects_bad_threshold(self):
        topology = CellTopology.line(3)
        with pytest.raises(SimulationError):
            DistanceReport(topology, threshold=0)

    def test_timer(self):
        policy = TimerReport(period=5)
        assert not policy.should_report(move(0, 1, steps=4))
        assert policy.should_report(move(0, 1, steps=5))

    def test_timer_rejects_bad_period(self):
        with pytest.raises(SimulationError):
            TimerReport(period=0)
