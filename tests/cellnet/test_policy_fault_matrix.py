"""Pinned reporting-policy × fault-model matrix on fixed seeds.

ISSUE 9's conditional priors re-plan from the registry's belief, which the
fault engine deliberately corrupts (lost updates, staleness windows, lost
pages).  This matrix pins the exact ``cells_paged`` / ``fallback_searches``
/ ``stale_lookups`` counters of every reporting policy under each fault
family on a fixed seed, so any change to the belief or candidate machinery
shows up as a counter diff here before it can silently shift the
time-varying results.  The values were recorded from the engine itself
(a regression pin, not a derivation); sticky devices (high stay
probability), call durations, and a zero-retry recovery policy make the
staleness window and the fallback sweep actually fire on this workload.
"""

import numpy as np
import pytest

from repro.cellnet import (
    CellTopology,
    CellularSimulator,
    FaultModel,
    LocationAreaPlan,
    RandomWalk,
    RecoveryPolicy,
    SimulationConfig,
)

POLICIES = ("never", "always", "la", "distance", "timer")

FAULTS = {
    "none": None,
    "page_loss": FaultModel(page_loss=0.2),
    "update_loss": FaultModel(update_loss=0.5),
    "stale_after": FaultModel(stale_after=2),
}

#: (reporting, fault) -> (cells_paged, fallback_searches, stale_lookups)
PINNED = {
    ("never", "none"): (183, 0, 0),
    ("never", "page_loss"): (278, 0, 0),
    ("never", "stale_after"): (263, 0, 15),
    ("never", "update_loss"): (183, 0, 0),
    ("always", "none"): (98, 0, 0),
    ("always", "page_loss"): (92, 0, 0),
    ("always", "stale_after"): (98, 0, 7),
    ("always", "update_loss"): (177, 5, 0),
    ("la", "none"): (188, 0, 0),
    ("la", "page_loss"): (213, 0, 0),
    ("la", "stale_after"): (212, 0, 14),
    ("la", "update_loss"): (210, 0, 0),
    ("distance", "none"): (160, 0, 0),
    ("distance", "page_loss"): (189, 0, 0),
    ("distance", "stale_after"): (186, 0, 13),
    ("distance", "update_loss"): (137, 0, 0),
    ("timer", "none"): (226, 0, 0),
    ("timer", "page_loss"): (314, 0, 0),
    ("timer", "stale_after"): (285, 0, 12),
    ("timer", "update_loss"): (179, 0, 0),
}


def run_matrix_cell(reporting, fault_name, seed=97):
    rng = np.random.default_rng(seed)
    topology = CellTopology.hexagonal_disk(2)
    plan = LocationAreaPlan.by_bfs(topology, 3)
    models = [RandomWalk(topology, stay_probability=0.7) for _ in range(4)]
    faults = FAULTS[fault_name]
    config = SimulationConfig(
        horizon=150,
        call_rate=0.25,
        max_paging_rounds=3,
        reporting=reporting,
        pager="heuristic",
        faults=faults,
        mean_call_duration=10,
        recovery=None if faults is None else RecoveryPolicy(max_retries=0),
    )
    metrics = (
        CellularSimulator(topology, plan, models, config, rng=rng).run().metrics
    )
    return (metrics.cells_paged, metrics.fallback_searches, metrics.stale_lookups)


@pytest.mark.parametrize("fault_name", sorted(FAULTS))
@pytest.mark.parametrize("reporting", POLICIES)
def test_pinned_counters(reporting, fault_name):
    assert run_matrix_cell(reporting, fault_name) == PINNED[(reporting, fault_name)]


def test_stale_window_fires_for_every_policy():
    """The staleness fault must actually bite on this workload."""
    for reporting in POLICIES:
        assert PINNED[(reporting, "stale_after")][2] > 0


def test_update_loss_forces_fallback_sweeps_for_point_candidates():
    """always-report pages a single stale cell, so the sweep must rescue it."""
    assert PINNED[("always", "update_loss")][1] > 0


def test_fault_free_runs_never_fall_back_or_go_stale():
    for reporting in POLICIES:
        _, fallbacks, stale = PINNED[(reporting, "none")]
        assert fallbacks == 0
        assert stale == 0
