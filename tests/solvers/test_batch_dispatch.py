"""Batched dispatch through the solver registry (run_batch / solve_batch)."""

import numpy as np
import pytest

from repro.core import PagingInstance
from repro.solvers import get_solver, solve_batch, solve_instance


@pytest.fixture
def instances(rng):
    matrices = rng.dirichlet(np.ones(10), size=(6, 2))
    return [PagingInstance.from_array(row, 3) for row in matrices]


class TestRunBatch:
    def test_heuristic_batch_supports_batch(self):
        solver = get_solver("heuristic-batch")
        assert solver.supports_batch
        assert "batch" in solver.spec.capabilities

    def test_scalar_solvers_do_not(self):
        solver = get_solver("heuristic-fast")
        assert not solver.supports_batch
        with pytest.raises(TypeError, match="batch"):
            solver.run_batch([])

    def test_run_batch_matches_scalar_dispatch(self, instances):
        solver = get_solver("heuristic-batch")
        plans = solver.run_batch(instances)
        assert len(plans) == len(instances)
        for i, instance in enumerate(instances):
            scalar = solve_instance("heuristic-fast", instance)
            row = plans.result(i)
            assert row.strategy == scalar.strategy
            assert row.expected_paging == scalar.expected_paging

    def test_run_batch_validates_options(self, instances):
        solver = get_solver("heuristic-batch")
        with pytest.raises(TypeError, match="unknown option"):
            solver.run_batch(instances, not_an_option=1)

    def test_module_level_solve_batch(self, instances):
        plans = solve_batch("heuristic-batch", instances, max_rounds=2)
        assert len(plans) == len(instances)
        assert plans.result(0).group_sizes == tuple(
            int(s) for s in plans.group_sizes[0]
        )
