"""Unit tests for the solver registry machinery itself."""

from fractions import Fraction
from pathlib import Path

import pytest

from repro.core import PagingInstance
from repro.obs import tracing
from repro.solvers import (
    KINDS,
    SolverResult,
    UnknownSolverError,
    get_solver,
    list_solvers,
    register_solver,
    solve_instance,
    solver_names,
)


@pytest.fixture
def instance():
    return PagingInstance.uniform(2, 6, 3, exact=True)


class TestRegistrySurface:
    def test_at_least_ten_solvers_registered(self):
        assert len(list_solvers()) >= 10

    def test_names_sorted_and_unique(self):
        names = [spec.name for spec in list_solvers()]
        assert names == sorted(names)
        assert len(names) == len(set(names))
        assert names == solver_names()

    def test_every_kind_is_legal_and_populated(self):
        kinds = {spec.kind for spec in list_solvers()}
        assert kinds == set(KINDS)

    def test_kind_filter(self):
        exact = list_solvers(kind="exact")
        assert exact
        assert all(spec.kind == "exact" for spec in exact)
        assert {spec.name for spec in exact} <= {spec.name for spec in list_solvers()}

    def test_capability_filter(self):
        weighted = list_solvers(capability="weighted")
        assert weighted
        assert all("weighted" in spec.capabilities for spec in weighted)

    def test_unknown_name_raises(self):
        with pytest.raises(UnknownSolverError):
            get_solver("does-not-exist")
        # UnknownSolverError must still look like the KeyError it replaces.
        with pytest.raises(KeyError):
            get_solver("does-not-exist")

    def test_spec_to_json_is_complete(self):
        payload = get_solver("heuristic").spec.to_json()
        assert payload["name"] == "heuristic"
        assert payload["kind"] == "heuristic"
        assert payload["anchor"]
        assert isinstance(payload["capabilities"], list)
        assert isinstance(payload["wraps"], list) and payload["wraps"]
        assert set(payload) == {
            "name", "kind", "capabilities", "summary", "anchor",
            "options", "required", "factor", "wraps",
        }

    def test_every_spec_has_summary_and_anchor(self):
        for spec in list_solvers():
            assert spec.summary, spec.name
            assert spec.anchor, spec.name
            assert spec.wraps, spec.name
            assert set(spec.required) <= set(spec.options), spec.name


class TestDocsSync:
    DOCS = Path(__file__).resolve().parent.parent.parent / "docs"

    def test_paper_map_lists_every_solver(self):
        """docs/paper_map.md carries one registry row per solver, with its anchor."""
        text = (self.DOCS / "paper_map.md").read_text()
        for spec in list_solvers():
            assert f"| `{spec.name}` |" in text, (
                f"docs/paper_map.md is missing the registry row for {spec.name!r}"
            )
            assert spec.anchor in text, (
                f"docs/paper_map.md never cites {spec.name!r}'s anchor {spec.anchor!r}"
            )

    def test_wrapped_functions_carry_the_solver_marker(self):
        """Reverse direction of lint rule RPL007: registered ⇒ marked."""
        for spec in list_solvers():
            entry = get_solver(spec.name)
            for function in entry.wrapped:
                assert function.__doc__ and "replint: solver" in function.__doc__, (
                    f"{spec.name} wraps {function.__qualname__}, which lacks "
                    "the 'replint: solver' docstring marker"
                )


class TestRegistration:
    def test_duplicate_name_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_solver(
                "heuristic", kind="heuristic", summary="dup", anchor="nowhere"
            )

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            register_solver(
                "new-solver", kind="magic", summary="bad", anchor="nowhere"
            )

    def test_required_must_be_subset_of_options(self):
        with pytest.raises(ValueError, match="required"):
            register_solver(
                "new-solver",
                kind="heuristic",
                summary="bad",
                anchor="nowhere",
                options=("a",),
                required=("b",),
            )


class TestOptionValidation:
    def test_unknown_option_rejected(self, instance):
        with pytest.raises(TypeError, match="unknown option"):
            get_solver("heuristic")(instance, banana=3)

    def test_missing_required_rejected(self, instance):
        with pytest.raises(TypeError, match="requires option"):
            get_solver("signature")(instance)

    def test_solve_instance_shortcut(self, instance):
        direct = get_solver("heuristic")(instance)
        shortcut = solve_instance("heuristic", instance)
        assert shortcut.expected_paging == direct.expected_paging
        assert shortcut.strategy == direct.strategy


class TestResultNormalForm:
    def test_fields(self, instance):
        result = get_solver("heuristic")(instance)
        assert isinstance(result, SolverResult)
        assert result.solver == "heuristic"
        assert result.kind == "heuristic"
        assert "bandwidth" in result.capabilities
        assert result.wall_time_s > 0
        assert result.strategy is not None
        assert result.group_sizes == result.strategy.group_sizes

    def test_fraction_views_on_exact_instance(self, instance):
        result = get_solver("exact")(instance)
        assert result.is_exact
        assert isinstance(result.expected_paging_fraction, Fraction)
        assert result.expected_paging_float == pytest.approx(
            float(result.expected_paging_fraction)
        )

    def test_value_only_solvers_have_no_strategy(self, instance):
        result = get_solver("adaptive")(instance)
        assert result.strategy is None
        assert result.group_sizes is None
        assert result.extras["policy"] == "replan-heuristic"

    def test_supports_is_advisory(self, instance):
        assert get_solver("single-user").supports(instance) is False
        assert get_solver("exact").supports(instance) is True
        large = PagingInstance.uniform(2, 24, 3)
        assert get_solver("exact").supports(large) is False
        assert get_solver("heuristic").supports(large) is True


class TestObservability:
    def test_solver_run_span_carries_registry_name(self, instance):
        with tracing(close=False) as tracer:
            get_solver("exact")(instance)
        spans = [
            event
            for event in tracer.sink.events
            if event.get("event") == "span" and event.get("name") == "solver.run"
        ]
        assert len(spans) == 1
        assert spans[0]["attrs"]["solver"] == "exact"
        assert spans[0]["attrs"]["kind"] == "exact"

    def test_every_solver_family_emits_the_same_span(self, instance):
        with tracing(close=False) as tracer:
            get_solver("heuristic")(instance)
            get_solver("signature")(instance, quorum=2)
            get_solver("adaptive")(instance)
        names = [
            event["attrs"]["solver"]
            for event in tracer.sink.events
            if event.get("event") == "span" and event.get("name") == "solver.run"
        ]
        assert names == ["heuristic", "signature", "adaptive"]
