"""Adapters must be bit-identical to the legacy solver calls.

The registry promised "no numeric change": for every registered solver,
calling it through :func:`repro.solvers.get_solver` on a pinned instance
must return the *same* objective value (``Fraction`` equality on exact
instances, bitwise float equality otherwise) and the same
:class:`~repro.core.strategy.Strategy` as the direct legacy call.  Tests
are the one place still allowed to import the concrete functions — that
is exactly what makes this comparison meaningful.
"""

from fractions import Fraction

import pytest

from repro.core import (
    PagingInstance,
    adaptive_expected_paging,
    adaptive_quorum_expected_paging,
    bandwidth_limited_heuristic,
    bandwidth_limited_optimal,
    clustered_exhaustive,
    conference_call_heuristic,
    conference_call_heuristic_fast,
    lower_bound_instance,
    optimal_adaptive_expected_paging,
    optimal_adaptive_quorum_expected_paging,
    optimal_signature,
    optimal_single_user,
    optimal_strategy,
    optimal_strategy_bruteforce,
    optimal_weighted_strategy,
    optimal_yellow_pages,
    optimize_over_order,
    optimize_signature_over_order,
    optimize_yellow_over_order,
    profile_heuristic,
    signature_heuristic,
    two_device_two_round_heuristic,
    weighted_heuristic,
    weighted_weight_order,
    yellow_pages_greedy,
    yellow_pages_m_approximation,
    yellow_pages_weight_order,
)
from repro.solvers import get_solver, list_solvers

#: The Section 4.3 gadget: m=2, c=8, d=2, exact Fractions.
GADGET = lower_bound_instance()

#: A second pinned exact instance with three rounds and uneven rows.
SKEWED = PagingInstance(
    [
        [Fraction(5, 12), Fraction(3, 12), Fraction(2, 12), Fraction(1, 12), Fraction(1, 12)],
        [Fraction(1, 12), Fraction(1, 12), Fraction(2, 12), Fraction(3, 12), Fraction(5, 12)],
        [Fraction(4, 12), Fraction(2, 12), Fraction(2, 12), Fraction(2, 12), Fraction(2, 12)],
    ],
    max_rounds=3,
)

SINGLE = PagingInstance(
    [[Fraction(6, 16), Fraction(4, 16), Fraction(3, 16), Fraction(2, 16), Fraction(1, 16)]],
    max_rounds=3,
)

ORDER5 = (4, 2, 0, 1, 3)
ORDER8 = (0, 1, 2, 3, 4, 5, 6, 7)
COSTS5 = (Fraction(1), Fraction(3), Fraction(2), Fraction(1), Fraction(2))

#: (solver name, instance, registry options, legacy thunk).  Each legacy
#: thunk returns ``(strategy_or_None, objective_value)``.
CASES = [
    ("heuristic", GADGET, {},
     lambda: _sv(conference_call_heuristic(GADGET))),
    ("heuristic", SKEWED, {"max_rounds": 2},
     lambda: _sv(conference_call_heuristic(SKEWED, max_rounds=2))),
    ("heuristic-fast", GADGET, {},
     lambda: _sv(conference_call_heuristic_fast(GADGET))),
    # The batched planner promises bit-identity with the fast scalar one.
    ("heuristic-batch", GADGET, {},
     lambda: _sv(conference_call_heuristic_fast(GADGET))),
    ("heuristic-batch", SKEWED, {"max_rounds": 2},
     lambda: _sv(conference_call_heuristic_fast(SKEWED, max_rounds=2))),
    ("profile-heuristic", SKEWED, {},
     lambda: _sv(profile_heuristic(SKEWED))),
    ("two-round-split", GADGET, {},
     lambda: _sv(two_device_two_round_heuristic(GADGET))),
    ("bandwidth-heuristic", SKEWED, {"max_group_size": 2},
     lambda: _sv(bandwidth_limited_heuristic(SKEWED, 2))),
    ("dp-cuts", SKEWED, {"order": ORDER5},
     lambda: _sv(optimize_over_order(SKEWED, ORDER5))),
    ("dp-cuts", GADGET, {"order": ORDER8},
     lambda: _sv(optimize_over_order(GADGET, ORDER8))),
    ("exact", GADGET, {},
     lambda: _sv(optimal_strategy(GADGET))),
    ("exact", SKEWED, {},
     lambda: _sv(optimal_strategy(SKEWED))),
    ("exact-bruteforce", SKEWED, {},
     lambda: _sv(optimal_strategy_bruteforce(SKEWED))),
    ("single-user", SINGLE, {},
     lambda: _sv(optimal_single_user(SINGLE))),
    ("bandwidth-exact", SKEWED, {"max_group_size": 2},
     lambda: _sv(bandwidth_limited_optimal(SKEWED, 2))),
    ("clustered", SKEWED, {},
     lambda: _sv(clustered_exhaustive(SKEWED))),
    ("weighted-heuristic", SKEWED, {"costs": COSTS5},
     lambda: _cv(weighted_heuristic(SKEWED, COSTS5))),
    ("weighted-weight-order", SKEWED, {"costs": COSTS5},
     lambda: _cv(weighted_weight_order(SKEWED, COSTS5))),
    ("weighted-exact", SKEWED, {"costs": COSTS5},
     lambda: _cv(optimal_weighted_strategy(SKEWED, COSTS5))),
    ("yellow-pages-greedy", SKEWED, {},
     lambda: _sv(yellow_pages_greedy(SKEWED))),
    ("yellow-pages-m-approx", SKEWED, {},
     lambda: _sv(yellow_pages_m_approximation(SKEWED))),
    ("yellow-pages-weight-order", SKEWED, {},
     lambda: _sv(yellow_pages_weight_order(SKEWED))),
    ("yellow-pages-cuts", SKEWED, {"order": ORDER5},
     lambda: _sv(optimize_yellow_over_order(SKEWED, ORDER5))),
    ("yellow-pages-exact", SKEWED, {},
     lambda: _sv(optimal_yellow_pages(SKEWED))),
    ("signature", SKEWED, {"quorum": 2},
     lambda: _sv(signature_heuristic(SKEWED, 2))),
    ("signature-cuts", SKEWED, {"order": ORDER5, "quorum": 2},
     lambda: _sv(optimize_signature_over_order(SKEWED, ORDER5, 2))),
    ("signature-exact", SKEWED, {"quorum": 2},
     lambda: _sv(optimal_signature(SKEWED, 2))),
    ("adaptive", SKEWED, {},
     lambda: (None, adaptive_expected_paging(SKEWED))),
    ("adaptive-optimal", SKEWED, {},
     lambda: (None, optimal_adaptive_expected_paging(SKEWED).expected_paging)),
    ("adaptive-quorum", SKEWED, {"quorum": 2},
     lambda: (None, adaptive_quorum_expected_paging(SKEWED, 2))),
    ("adaptive-quorum-optimal", SKEWED, {"quorum": 2},
     lambda: (None, optimal_adaptive_quorum_expected_paging(SKEWED, 2))),
]


def _sv(result):
    return result.strategy, result.expected_paging


def _cv(result):
    return result.strategy, result.expected_cost


@pytest.mark.parametrize(
    "name,instance,options,legacy",
    CASES,
    ids=[f"{case[0]}-{index}" for index, case in enumerate(CASES)],
)
def test_registry_result_is_bit_identical_to_legacy(name, instance, options, legacy):
    result = get_solver(name)(instance, **options)
    legacy_strategy, legacy_value = legacy()
    assert result.expected_paging == legacy_value
    assert type(result.expected_paging) is type(legacy_value)
    assert result.strategy == legacy_strategy
    assert result.solver == name


def test_every_registered_solver_has_a_regression_case():
    covered = {case[0] for case in CASES}
    registered = {spec.name for spec in list_solvers()}
    assert covered == registered, (
        f"missing regression cases: {sorted(registered - covered)}; "
        f"stale cases: {sorted(covered - registered)}"
    )


def test_exact_values_are_fractions_on_exact_instances():
    result = get_solver("exact")(GADGET)
    assert isinstance(result.expected_paging, Fraction)
    assert result.expected_paging == Fraction(317, 49)
    heuristic = get_solver("heuristic")(GADGET)
    assert heuristic.expected_paging == Fraction(320, 49)
