"""Cross-solver consistency properties, driven by the registry itself.

On random small exact instances (integer-numerator ``Fraction`` rows, so
every comparison is exact):

* every ``kind="exact"`` solver with no required options that supports the
  instance returns the same optimal expected paging, and a strategy that
  evaluates to that optimum;
* every heuristic with a proven ``factor`` stays within it of the optimum
  (and never beats the optimum — it is an upper bound);
* the weighted exact solver at unit integer costs reproduces the
  unweighted optimum.

Seeding follows the runner convention: one root ``SeedSequence`` spawns a
child per trial, so trials are independent but fully reproducible.
"""

from fractions import Fraction

import numpy as np
import pytest

from repro.core import PagingInstance, expected_paging
from repro.experiments import spawn_task_seed
from repro.solvers import get_solver, list_solvers

ROOT_SEED = 20020721

#: (devices, cells, rounds) shapes; quorum solvers need m >= 2, the 4/3
#: special case wants (2, c, 2), and everything must fit the exact DP.
SHAPES = [(1, 5, 2), (2, 4, 2), (2, 6, 2), (2, 5, 3), (3, 5, 3), (3, 6, 2)]
TRIALS_PER_SHAPE = 3

EXACT_SPECS = [
    spec for spec in list_solvers(kind="exact") if not spec.required
]
HEURISTIC_SPECS = [
    spec for spec in list_solvers(kind="heuristic") if not spec.required
]


def _random_exact_instance(shape_index, trial):
    devices, cells, rounds = SHAPES[shape_index]
    seed = spawn_task_seed(ROOT_SEED, shape_index * TRIALS_PER_SHAPE + trial)
    rng = np.random.default_rng(seed)
    rows = []
    for _ in range(devices):
        weights = rng.integers(1, 30, size=cells)
        total = int(weights.sum())
        rows.append([Fraction(int(w), total) for w in weights])
    return PagingInstance(rows, max_rounds=rounds)


INSTANCES = [
    pytest.param(
        _random_exact_instance(shape_index, trial),
        id=f"m{SHAPES[shape_index][0]}c{SHAPES[shape_index][1]}"
        f"d{SHAPES[shape_index][2]}t{trial}",
    )
    for shape_index in range(len(SHAPES))
    for trial in range(TRIALS_PER_SHAPE)
]


def _optimum(instance):
    return get_solver("exact")(instance).expected_paging


def test_the_property_suite_is_not_vacuous():
    assert len(EXACT_SPECS) >= 3, [spec.name for spec in EXACT_SPECS]
    assert len(HEURISTIC_SPECS) >= 3, [spec.name for spec in HEURISTIC_SPECS]


@pytest.mark.parametrize("instance", INSTANCES)
def test_all_exact_solvers_agree(instance):
    reference = _optimum(instance)
    assert isinstance(reference, Fraction)
    for spec in EXACT_SPECS:
        solver = get_solver(spec.name)
        if not solver.supports(instance):
            continue
        result = solver(instance)
        assert result.expected_paging == reference, (
            f"{spec.name} disagrees with the exact optimum"
        )
        # The strategy must actually *achieve* the claimed optimum.
        assert expected_paging(instance, result.strategy) == reference


@pytest.mark.parametrize("instance", INSTANCES)
def test_heuristics_respect_their_proven_factor(instance):
    reference = _optimum(instance)
    for spec in HEURISTIC_SPECS:
        solver = get_solver(spec.name)
        if not solver.supports(instance):
            continue
        result = solver(instance)
        value = Fraction(result.expected_paging)
        # An oblivious strategy can never beat the oblivious optimum; the
        # float pipeline gets a hair of rounding slack.
        slack = Fraction(1, 10**9)
        assert value >= reference * (1 - slack), spec.name
        assert expected_paging(instance, result.strategy) >= reference
        if spec.factor is not None:
            bound = Fraction(spec.factor).limit_denominator(10**12)
            assert value <= reference * bound * (1 + slack), (
                f"{spec.name} exceeded its proven factor {spec.factor}"
            )
        else:
            # No proven ratio: still sane — never worse than paging all cells.
            assert value <= Fraction(instance.num_cells)


@pytest.mark.parametrize("instance", INSTANCES)
def test_weighted_exact_at_unit_costs_matches_unweighted_optimum(instance):
    unit_costs = (1,) * instance.num_cells
    weighted = get_solver("weighted-exact")(instance, costs=unit_costs)
    assert weighted.expected_paging == _optimum(instance)
