"""Tests for the ``repro.solvers`` registry, adapters, and consistency."""
