"""Meta-tests on the public API surface.

Keeps ``__all__`` honest in every package: each listed name must exist, and
the documented entry points must be importable from where the docs say.
"""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.hardness",
    "repro.analysis",
    "repro.distributions",
    "repro.cellnet",
    "repro.experiments",
    "repro.obs",
]


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_entries_exist(package_name):
    package = importlib.import_module(package_name)
    assert hasattr(package, "__all__"), f"{package_name} should declare __all__"
    for name in package.__all__:
        assert hasattr(package, name), f"{package_name}.__all__ lists missing {name}"


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_entries_sorted_and_unique(package_name):
    package = importlib.import_module(package_name)
    names = list(package.__all__)
    assert len(names) == len(set(names)), f"{package_name}.__all__ has duplicates"


def test_top_level_reexports_cover_the_readme():
    import repro

    for name in (
        "PagingInstance",
        "Strategy",
        "conference_call_heuristic",
        "optimal_strategy",
        "expected_paging",
        "adaptive_expected_paging",
    ):
        assert hasattr(repro, name)


def test_version_is_exposed():
    import repro

    assert repro.__version__ == "1.0.0"


def test_error_hierarchy():
    from repro import (
        InfeasibleError,
        InvalidInstanceError,
        InvalidStrategyError,
        ReproError,
        SimulationError,
        SolverLimitError,
    )

    for error_type in (
        InfeasibleError,
        InvalidInstanceError,
        InvalidStrategyError,
        SimulationError,
        SolverLimitError,
    ):
        assert issubclass(error_type, ReproError)
    assert issubclass(InvalidInstanceError, ValueError)
    assert issubclass(SolverLimitError, RuntimeError)


def test_cli_entry_point_configured():
    import tomllib
    from pathlib import Path

    pyproject = Path(__file__).resolve().parent.parent / "pyproject.toml"
    config = tomllib.loads(pyproject.read_text())
    assert config["project"]["scripts"]["repro"] == "repro.cli:main"
