"""Meta-tests on the public API surface.

Keeps ``__all__`` honest in every package: each listed name must exist, and
the documented entry points must be importable from where the docs say.

``repro.core`` and ``repro.solvers`` generate their ``__all__`` from the
module namespace instead of maintaining a literal list; the drift tests
here re-derive the expected list from the static ``from .module import``
statements, so a name imported but dropped from ``__all__`` (or vice
versa) fails loudly.
"""

import ast
import importlib
import inspect

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.hardness",
    "repro.analysis",
    "repro.distributions",
    "repro.cellnet",
    "repro.experiments",
    "repro.obs",
    "repro.solvers",
]

#: Packages whose ``__all__`` is generated (sorted, import-derived).
GENERATED = ["repro.core", "repro.solvers"]


def _statically_imported_names(package):
    """Public names bound by ``from X import ...`` in the package source."""
    tree = ast.parse(inspect.getsource(package))
    names = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module != "__future__":
            for alias in node.names:
                bound = alias.asname or alias.name
                if not bound.startswith("_"):
                    names.add(bound)
    return names


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_entries_exist(package_name):
    package = importlib.import_module(package_name)
    assert hasattr(package, "__all__"), f"{package_name} should declare __all__"
    for name in package.__all__:
        assert hasattr(package, name), f"{package_name}.__all__ lists missing {name}"


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_entries_sorted_and_unique(package_name):
    package = importlib.import_module(package_name)
    names = list(package.__all__)
    assert len(names) == len(set(names)), f"{package_name}.__all__ has duplicates"


@pytest.mark.parametrize("package_name", GENERATED)
def test_generated_all_is_sorted(package_name):
    package = importlib.import_module(package_name)
    names = list(package.__all__)
    assert names == sorted(names), f"{package_name}.__all__ is not sorted"


@pytest.mark.parametrize("package_name", GENERATED)
def test_generated_all_matches_static_imports(package_name):
    """The generated list must equal the ``from .module import`` statements."""
    package = importlib.import_module(package_name)
    expected = _statically_imported_names(package)
    actual = set(package.__all__)
    assert actual == expected, (
        f"{package_name}.__all__ drifted from its imports: "
        f"extra={sorted(actual - expected)}, missing={sorted(expected - actual)}"
    )


def test_top_level_reexports_cover_the_readme():
    import repro

    for name in (
        "PagingInstance",
        "Strategy",
        "conference_call_heuristic",
        "optimal_strategy",
        "expected_paging",
        "adaptive_expected_paging",
    ):
        assert hasattr(repro, name)


def test_version_is_exposed():
    import repro

    assert repro.__version__ == "1.0.0"


def test_error_hierarchy():
    from repro import (
        InfeasibleError,
        InvalidInstanceError,
        InvalidStrategyError,
        ReproError,
        SimulationError,
        SolverLimitError,
    )

    for error_type in (
        InfeasibleError,
        InvalidInstanceError,
        InvalidStrategyError,
        SimulationError,
        SolverLimitError,
    ):
        assert issubclass(error_type, ReproError)
    assert issubclass(InvalidInstanceError, ValueError)
    assert issubclass(SolverLimitError, RuntimeError)


def test_cli_entry_point_configured():
    import tomllib
    from pathlib import Path

    pyproject = Path(__file__).resolve().parent.parent / "pyproject.toml"
    config = tomllib.loads(pyproject.read_text())
    assert config["project"]["scripts"]["repro"] == "repro.cli:main"
