"""Property-based tests on the NP-hardness machinery."""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardness import (
    PartitionInstance,
    extract_partition_witness,
    has_partition,
    reduce_partition_to_quasipartition2,
    reduce_quasipartition1_to_conference_call,
    solve_partition,
    solve_quasipartition1,
    solve_quasipartition2,
    verify_partition,
)


@st.composite
def partition_instances(draw):
    count = draw(st.sampled_from((2, 4, 6)))
    sizes = tuple(
        draw(st.integers(1, 12)) for _ in range(count)
    )
    return PartitionInstance(sizes)


@given(partition_instances())
@settings(max_examples=60, deadline=None)
def test_partition_witnesses_always_verify(instance):
    witness = solve_partition(instance)
    if witness is not None:
        assert verify_partition(instance, witness)
    else:
        # Exhaustive check that no witness was missed on these tiny sizes.
        import itertools

        g = instance.count
        for subset in itertools.combinations(range(g), g // 2):
            assert 2 * sum(instance.sizes[i] for i in subset) != instance.total


@given(partition_instances())
@settings(max_examples=25, deadline=None)
def test_lemma37_reduction_preserves_the_answer(instance):
    reduction = reduce_partition_to_quasipartition2(instance)
    witness = solve_quasipartition2(reduction.sizes, reduction.parameters)
    assert has_partition(instance) == (witness is not None)
    if witness is not None:
        recovered = extract_partition_witness(reduction, witness)
        assert verify_partition(instance, recovered)


@given(st.lists(st.integers(1, 9), min_size=3, max_size=3))
@settings(max_examples=25, deadline=None)
def test_lemma32_reduction_preserves_the_answer(raw_sizes):
    from repro.core import optimal_strategy

    sizes = [Fraction(v) for v in raw_sizes]
    reduction = reduce_quasipartition1_to_conference_call(sizes)
    optimum = optimal_strategy(reduction.instance)
    hits_bound = optimum.expected_paging == reduction.lower_bound
    assert hits_bound == (solve_quasipartition1(sizes) is not None)
    if hits_bound:
        witness = reduction.witness_from_strategy(optimum.strategy)
        assert sum(sizes[i] for i in witness) * 2 == sum(sizes)
        assert len(witness) == 2


@given(st.lists(st.integers(0, 10), min_size=3, max_size=6))
@settings(max_examples=50, deadline=None)
def test_quasipartition1_decision_matches_brute_force(raw_sizes):
    import itertools

    if len(raw_sizes) % 3 != 0:
        raw_sizes = raw_sizes[: 3 * (len(raw_sizes) // 3)]
    sizes = [Fraction(v) for v in raw_sizes]
    c = len(sizes)
    total = sum(sizes)
    witness = solve_quasipartition1(sizes)
    brute = any(
        2 * sum(sizes[i] for i in combo) == total
        for combo in itertools.combinations(range(c), 2 * c // 3)
    )
    assert (witness is not None) == brute
