"""Executable-documentation harness for every page under ``docs/``.

The tutorial promises "every snippet runs as-is"; this module makes that a
CI property for the whole ``docs/`` tree, not just README/tutorial (which
``test_readme.py`` already guards).  Every ```python block of every
``docs/*.md`` page is extracted and executed in order, one shared namespace
per document — so a snippet may build on the previous one, exactly as a
reader would run them.  Snippets must be seeded and offline; a page whose
examples cannot run does not merge.
"""

import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent
DOCS_DIR = ROOT / "docs"

CODE_BLOCK = re.compile(r"```python\n(.*?)```", re.DOTALL)


def python_blocks(path: Path):
    return CODE_BLOCK.findall(path.read_text())


def doc_pages():
    return sorted(DOCS_DIR.glob("*.md"))


def test_docs_directory_is_nonempty():
    assert doc_pages(), "docs/ should contain markdown pages"


@pytest.mark.parametrize("path", doc_pages(), ids=lambda p: p.name)
def test_every_python_block_runs(path):
    """Each page's python blocks execute top to bottom, shared namespace."""
    blocks = python_blocks(path)
    if not blocks:
        pytest.skip(f"{path.name} has no python blocks")
    namespace: dict = {}
    for index, block in enumerate(blocks):
        code = compile(block, f"{path.name}[{index}]", "exec")
        exec(code, namespace)  # noqa: S102 - executing our own documentation


class TestCoverageFloors:
    """The pages the ISSUE names must actually contain runnable examples."""

    def test_tutorial_has_enough_snippets(self):
        assert len(python_blocks(DOCS_DIR / "tutorial.md")) >= 5

    def test_api_reference_import_blocks_are_concrete(self):
        """No `import ...` placeholders — every block must compile."""
        for index, block in enumerate(python_blocks(DOCS_DIR / "api.md")):
            compile(block, f"api.md[{index}]", "exec")

    def test_architecture_page_demonstrates_the_registry(self):
        blocks = python_blocks(DOCS_DIR / "architecture.md")
        assert len(blocks) >= 4
        joined = "\n".join(blocks)
        assert "get_solver" in joined
        assert "list_solvers" in joined
        assert "solver.run" in joined

    def test_observability_page_demonstrates_tracing(self):
        blocks = python_blocks(DOCS_DIR / "observability.md")
        assert len(blocks) >= 3
        joined = "\n".join(blocks)
        assert "tracing" in joined
        assert "summarize" in joined

    def test_contention_page_demonstrates_the_engine(self):
        blocks = python_blocks(DOCS_DIR / "contention.md")
        assert len(blocks) >= 4
        joined = "\n".join(blocks)
        assert "EventEngine" in joined
        assert "ChannelResource" in joined
        assert "blocking_probability" in joined
        assert "channel_capacity" in joined

    def test_service_page_demonstrates_the_controller(self):
        blocks = python_blocks(DOCS_DIR / "service.md")
        assert len(blocks) >= 4
        joined = "\n".join(blocks)
        assert "PagingController" in joined
        assert "submit" in joined
        assert "quantization_bound" in joined
        assert "shed" in joined


class TestTutorialClaims:
    """The tutorial's concrete numbers stay true as the code evolves."""

    def test_plan_example_numbers(self):
        import numpy as np

        from repro import PagingInstance, conference_call_heuristic

        rng = np.random.default_rng(0)
        profiles = rng.dirichlet(np.full(12, 0.5), size=3)
        instance = PagingInstance.from_array(profiles, max_rounds=3)
        plan = conference_call_heuristic(instance)
        assert sum(plan.group_sizes) == 12
        assert plan.group_sizes == (6, 3, 3)  # quoted in the tutorial
        # "~30% below blanket paging" claim
        assert float(plan.expected_paging) < 0.75 * 12
