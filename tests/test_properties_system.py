"""Property-based tests on the substrate: geometry, plans, serialization,
and the fast/reference planner equivalence."""

from fractions import Fraction

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cellnet import CellTopology, Hex, LocationAreaPlan
from repro.core import (
    PagingInstance,
    Strategy,
    conference_call_heuristic,
    conference_call_heuristic_fast,
)
from repro.core.serialization import dumps, loads

hex_coordinates = st.integers(-20, 20)


@st.composite
def hexes(draw):
    return Hex(draw(hex_coordinates), draw(hex_coordinates))


# ----------------------------------------------------------------------
# Hex geometry is a metric space
# ----------------------------------------------------------------------
@given(hexes(), hexes())
@settings(max_examples=100, deadline=None)
def test_hex_distance_symmetry(a, b):
    assert a.distance(b) == b.distance(a)
    assert (a.distance(b) == 0) == (a == b)


@given(hexes(), hexes(), hexes())
@settings(max_examples=100, deadline=None)
def test_hex_distance_triangle_inequality(a, b, c):
    assert a.distance(c) <= a.distance(b) + b.distance(c)


@given(hexes())
@settings(max_examples=60, deadline=None)
def test_hex_neighbors_at_distance_one(a):
    neighbors = a.neighbors()
    assert len(set(neighbors)) == 6
    assert all(a.distance(n) == 1 for n in neighbors)


@given(hexes())
@settings(max_examples=60, deadline=None)
def test_hex_cube_invariant(a):
    assert a.q + a.r + a.s == 0


# ----------------------------------------------------------------------
# Location-area plans partition the cells
# ----------------------------------------------------------------------
@given(st.integers(1, 4), st.integers(0, 3))
@settings(max_examples=30, deadline=None)
def test_bfs_plans_partition_and_connect(num_areas, radius):
    import networkx as nx

    topology = CellTopology.hexagonal_disk(radius)
    areas = min(num_areas, topology.num_cells)
    plan = LocationAreaPlan.by_bfs(topology, areas)
    assert sum(plan.sizes()) == topology.num_cells
    covered = set()
    for index in range(plan.num_areas):
        cells = plan.cells_of(index)
        assert not covered & set(cells)
        covered |= set(cells)
        assert nx.is_connected(topology.graph.subgraph(cells))
    assert covered == set(range(topology.num_cells))
    for cell in range(topology.num_cells):
        assert cell in plan.cells_of(plan.area_of(cell))


# ----------------------------------------------------------------------
# Serialization round trips
# ----------------------------------------------------------------------
@st.composite
def exact_instances(draw):
    m = draw(st.integers(1, 3))
    c = draw(st.integers(2, 6))
    d = draw(st.integers(1, c))
    rows = []
    for _ in range(m):
        weights = draw(st.lists(st.integers(0, 9), min_size=c, max_size=c))
        if sum(weights) == 0:
            weights[0] = 1
        total = sum(weights)
        rows.append([Fraction(w, total) for w in weights])
    return PagingInstance(rows, max_rounds=d, allow_zero=True)


@given(exact_instances())
@settings(max_examples=50, deadline=None)
def test_instance_serialization_round_trip(instance):
    assert loads(dumps(instance)) == instance


@given(st.lists(st.integers(0, 3), min_size=1, max_size=8))
@settings(max_examples=60, deadline=None)
def test_strategy_serialization_round_trip(labels):
    t = max(labels) + 1
    padded = list(range(t)) + labels  # guarantee every round non-empty
    strategy = Strategy.from_assignment(padded)
    assert loads(dumps(strategy)) == strategy


# ----------------------------------------------------------------------
# Fast planner equals the reference
# ----------------------------------------------------------------------
@given(st.integers(0, 10_000), st.integers(2, 10), st.integers(1, 3))
@settings(max_examples=40, deadline=None)
def test_fast_planner_matches_reference(seed, num_cells, num_devices):
    rng = np.random.default_rng(seed)
    matrix = rng.dirichlet(np.ones(num_cells), size=num_devices)
    d = int(rng.integers(1, num_cells + 1))
    instance = PagingInstance.from_array(matrix, max_rounds=d)
    reference = conference_call_heuristic(instance)
    fast = conference_call_heuristic_fast(instance)
    assert abs(float(reference.expected_paging) - float(fast.expected_paging)) < 1e-9
    assert fast.order == reference.order
