"""Guards that the documentation's code actually runs.

Extracts the python code blocks from README.md and docs/tutorial.md and
executes them in order (per document, shared namespace), so the docs cannot
silently rot.
"""

import re
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

CODE_BLOCK = re.compile(r"```python\n(.*?)```", re.DOTALL)


def python_blocks(path: Path):
    return CODE_BLOCK.findall(path.read_text())


class TestReadme:
    def test_has_python_examples(self):
        blocks = python_blocks(ROOT / "README.md")
        assert blocks, "README should contain runnable python examples"

    def test_quickstart_runs(self, capsys):
        blocks = python_blocks(ROOT / "README.md")
        namespace: dict = {}
        for block in blocks:
            exec(compile(block, "README.md", "exec"), namespace)  # noqa: S102
        out = capsys.readouterr().out
        assert out.strip(), "the quickstart prints results"


class TestTutorial:
    def test_all_snippets_run(self, capsys):
        blocks = python_blocks(ROOT / "docs" / "tutorial.md")
        assert len(blocks) >= 5
        namespace: dict = {}
        for index, block in enumerate(blocks):
            exec(compile(block, f"tutorial.md[{index}]", "exec"), namespace)  # noqa: S102

    def test_tutorial_claims_hold(self):
        """The tutorial's headline numbers stay true."""
        import numpy as np

        from repro import PagingInstance, conference_call_heuristic

        rng = np.random.default_rng(0)
        profiles = rng.dirichlet(np.full(12, 0.5), size=3)
        instance = PagingInstance.from_array(profiles, max_rounds=3)
        plan = conference_call_heuristic(instance)
        assert float(plan.expected_paging) < 12  # beats blanket paging
