"""Unit tests for synthetic distribution generators."""

import numpy as np
import pytest

from repro.distributions import (
    FAMILY_NAMES,
    adversarial_instance,
    clustered_instance,
    dirichlet_instance,
    geometric_instance,
    hotspot_instance,
    instance_family,
    two_tier_instance,
    uniform_instance,
    zipf_instance,
)
from repro.errors import InvalidInstanceError


class TestEveryFamily:
    @pytest.mark.parametrize("family", FAMILY_NAMES)
    def test_produces_valid_instance(self, family, rng):
        instance = instance_family(family, 2, 8, 3, rng=rng)
        assert instance.num_devices == 2
        assert instance.num_cells == 8
        assert instance.max_rounds == 3
        for row in instance.rows:
            assert sum(row) == pytest.approx(1.0)
            assert all(p >= 0 for p in row)

    def test_unknown_family_rejected(self, rng):
        with pytest.raises(InvalidInstanceError, match="unknown family"):
            instance_family("nope", 2, 8, 3, rng=rng)

    @pytest.mark.parametrize("family", ["dirichlet", "zipf", "hotspot"])
    def test_reproducible_with_same_seed(self, family):
        one = instance_family(family, 2, 6, 2, rng=np.random.default_rng(5))
        two = instance_family(family, 2, 6, 2, rng=np.random.default_rng(5))
        assert np.allclose(one.as_array(), two.as_array())


class TestSpecificShapes:
    def test_uniform(self):
        instance = uniform_instance(3, 4, 2)
        assert instance.probability(0, 0) == pytest.approx(0.25)

    def test_dirichlet_concentration_effect(self, rng):
        skewed = dirichlet_instance(1, 20, 2, rng=rng, concentration=0.1)
        flat = dirichlet_instance(1, 20, 2, rng=rng, concentration=50.0)
        assert max(skewed.row(0)) > max(flat.row(0))

    def test_dirichlet_rejects_bad_concentration(self, rng):
        with pytest.raises(InvalidInstanceError):
            dirichlet_instance(1, 5, 2, rng=rng, concentration=0.0)

    def test_zipf_decays(self, rng):
        instance = zipf_instance(1, 10, 2, rng=rng, exponent=1.5)
        row = sorted(instance.row(0), reverse=True)
        assert row[0] / row[-1] == pytest.approx(10**1.5, rel=1e-6)

    def test_geometric_peaks_at_anchor(self, rng):
        instance = geometric_instance(1, 9, 2, rng=rng, decay=0.5)
        row = list(instance.row(0))
        anchor = row.index(max(row))
        for step in range(1, 3):
            if anchor - step >= 0:
                assert row[anchor - step] < row[anchor]
            if anchor + step < 9:
                assert row[anchor + step] < row[anchor]

    def test_geometric_rejects_bad_decay(self, rng):
        with pytest.raises(InvalidInstanceError):
            geometric_instance(1, 5, 2, rng=rng, decay=1.0)

    def test_hotspot_home_mass(self, rng):
        instance = hotspot_instance(1, 10, 2, rng=rng, home_mass=0.7)
        assert max(instance.row(0)) == pytest.approx(0.7, abs=0.01)

    def test_two_tier_zone_mass(self, rng):
        instance = two_tier_instance(1, 12, 2, rng=rng, home_cells=3, home_mass=0.9)
        row = sorted(instance.row(0), reverse=True)
        assert sum(row[:3]) > 0.85

    def test_two_tier_rejects_bad_zone(self, rng):
        with pytest.raises(InvalidInstanceError):
            two_tier_instance(1, 4, 2, rng=rng, home_cells=9)

    def test_clustered_columns_repeat(self, rng):
        instance = clustered_instance(2, 10, 2, rng=rng, num_levels=2)
        columns = {
            tuple(round(float(row[j]), 12) for row in instance.rows)
            for j in range(10)
        }
        assert len(columns) <= 2

    def test_adversarial_misleads_weight_order(self, rng):
        """The gadget family regularly produces ratio > 1 instances."""
        from repro.analysis import measure_ratio

        ratios = [
            measure_ratio(adversarial_instance(8, 2, rng=rng)).ratio
            for _ in range(25)
        ]
        assert max(ratios) > 1.0

    def test_adversarial_needs_cells(self, rng):
        with pytest.raises(InvalidInstanceError):
            adversarial_instance(3, 2, rng=rng)
