"""Unit tests for trace-based distribution estimation."""

import numpy as np
import pytest

from repro.distributions import (
    empirical_distribution,
    estimation_report,
    instance_from_traces,
    kl_divergence,
    recency_weighted_distribution,
    total_variation,
)
from repro.errors import InvalidInstanceError


class TestEmpirical:
    def test_counts_with_smoothing(self):
        distribution = empirical_distribution([0, 0, 1], 3, smoothing=1.0)
        assert distribution[0] == pytest.approx(3 / 6)
        assert distribution[1] == pytest.approx(2 / 6)
        assert distribution[2] == pytest.approx(1 / 6)

    def test_strictly_positive_with_smoothing(self):
        distribution = empirical_distribution([0] * 100, 5, smoothing=0.5)
        assert all(p > 0 for p in distribution)

    def test_no_smoothing_pure_frequencies(self):
        distribution = empirical_distribution([0, 1, 1, 1], 2, smoothing=0.0)
        assert distribution[1] == pytest.approx(0.75)

    def test_rejects_unknown_cell(self):
        with pytest.raises(InvalidInstanceError, match="unknown cell"):
            empirical_distribution([7], 3)

    def test_rejects_empty_unsmoothed(self):
        with pytest.raises(InvalidInstanceError):
            empirical_distribution([], 3, smoothing=0.0)

    def test_converges_to_truth(self, rng):
        truth = np.array([0.5, 0.3, 0.2])
        trace = rng.choice(3, size=20_000, p=truth)
        estimate = empirical_distribution(trace, 3, smoothing=1.0)
        assert total_variation(truth, estimate) < 0.02


class TestRecencyWeighted:
    def test_recent_cells_dominate(self):
        trace = [0] * 200 + [1] * 10
        flat = empirical_distribution(trace, 2, smoothing=0.0)
        recent = recency_weighted_distribution(trace, 2, half_life=5.0, smoothing=0.0)
        assert recent[1] > flat[1]

    def test_rejects_bad_half_life(self):
        with pytest.raises(InvalidInstanceError):
            recency_weighted_distribution([0], 2, half_life=0.0)


class TestInstanceFromTraces:
    def test_builds_valid_instance(self):
        instance = instance_from_traces([[0, 1, 1], [2, 2, 0]], 3, max_rounds=2)
        assert instance.num_devices == 2
        for row in instance.rows:
            assert sum(row) == pytest.approx(1.0)

    def test_recency_variant(self):
        instance = instance_from_traces(
            [[0, 1, 1]], 3, max_rounds=2, half_life=10.0
        )
        assert instance.num_devices == 1


class TestDivergences:
    def test_total_variation_range(self):
        p = np.array([1.0, 0.0])
        q = np.array([0.0, 1.0])
        assert total_variation(p, q) == pytest.approx(1.0)
        assert total_variation(p, p) == 0.0

    def test_kl_properties(self):
        p = np.array([0.6, 0.4])
        q = np.array([0.5, 0.5])
        assert kl_divergence(p, p) == pytest.approx(0.0)
        assert kl_divergence(p, q) > 0

    def test_kl_handles_zero_in_p(self):
        p = np.array([1.0, 0.0])
        q = np.array([0.5, 0.5])
        assert np.isfinite(kl_divergence(p, q))

    def test_kl_rejects_zero_in_q(self):
        with pytest.raises(InvalidInstanceError):
            kl_divergence(np.array([0.5, 0.5]), np.array([1.0, 0.0]))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(InvalidInstanceError):
            total_variation(np.ones(2) / 2, np.ones(3) / 3)

    def test_estimation_report_keys(self, rng):
        truth = [np.array([0.7, 0.3]), np.array([0.4, 0.6])]
        estimates = [np.array([0.6, 0.4]), np.array([0.5, 0.5])]
        report = estimation_report(truth, estimates)
        assert set(report) == {"mean_tv", "max_tv", "mean_kl", "max_kl"}
        assert report["max_tv"] >= report["mean_tv"]
