"""Unit tests for correlated populations (E24)."""

import numpy as np
import pytest

from repro.core import Strategy, conference_call_heuristic, expected_paging_float
from repro.distributions import AnchoredPopulation, anchored_population, model_error
from repro.errors import InvalidInstanceError


@pytest.fixture
def population(rng):
    return anchored_population(3, 8, 0.5, rng=rng)


class TestConstruction:
    def test_validation(self):
        with pytest.raises(InvalidInstanceError):
            AnchoredPopulation((0.5, 0.5), ((0.5, 0.5),), cohesion=1.5)
        with pytest.raises(InvalidInstanceError):
            AnchoredPopulation((0.6, 0.5), ((0.5, 0.5),), cohesion=0.5)
        with pytest.raises(InvalidInstanceError):
            AnchoredPopulation((0.5, 0.5), ((1.0,),), cohesion=0.5)

    def test_shapes(self, population):
        assert population.num_devices == 3
        assert population.num_cells == 8

    def test_marginal_instance_rows_sum_to_one(self, population):
        instance = population.marginal_instance(3)
        for row in instance.rows:
            assert sum(row) == pytest.approx(1.0)

    def test_zero_cohesion_marginals_are_individuals(self, rng):
        population = anchored_population(2, 6, 0.0, rng=rng)
        instance = population.marginal_instance(2)
        for row, individual in zip(instance.rows, population.individual):
            assert np.allclose([float(p) for p in row], individual)


class TestSampling:
    def test_full_cohesion_all_together(self, rng):
        population = anchored_population(3, 6, 1.0, rng=rng)
        for _ in range(30):
            locations = population.sample_locations(rng)
            assert len(set(locations)) == 1

    def test_sampled_marginals_match(self, rng):
        population = anchored_population(2, 4, 0.6, rng=rng)
        instance = population.marginal_instance(2)
        draws = np.array(
            [population.sample_locations(rng) for _ in range(20_000)]
        )
        for device in range(2):
            for cell in range(4):
                empirical = float(np.mean(draws[:, device] == cell))
                assert empirical == pytest.approx(
                    float(instance.probability(device, cell)), abs=0.02
                )


class TestTrueExpectedPaging:
    def test_zero_cohesion_matches_lemma21(self, rng):
        population = anchored_population(2, 7, 0.0, rng=rng)
        instance = population.marginal_instance(3)
        plan = conference_call_heuristic(instance)
        believed, true = model_error(population, plan.strategy, 3)
        assert true == pytest.approx(believed)
        assert believed == pytest.approx(
            expected_paging_float(instance, plan.strategy)
        )

    def test_matches_monte_carlo(self, rng):
        population = anchored_population(3, 6, 0.5, rng=rng)
        strategy = Strategy.from_order_and_sizes(tuple(range(6)), (2, 2, 2))
        exact = population.true_expected_paging(strategy)
        total = 0
        trials = 20_000
        for _ in range(trials):
            locations = population.sample_locations(rng)
            paged = 0
            remaining = set(locations)
            for group in strategy.groups:
                paged += len(group)
                remaining -= group
                if not remaining:
                    break
            total += paged
        assert total / trials == pytest.approx(exact, abs=0.1)

    def test_positive_correlation_never_hurts(self, rng):
        """Believed EP upper-bounds true EP for anchored mixtures."""
        for cohesion in (0.2, 0.6, 0.9):
            population = anchored_population(3, 8, cohesion, rng=rng)
            instance = population.marginal_instance(3)
            plan = conference_call_heuristic(instance)
            believed, true = model_error(population, plan.strategy, 3)
            assert true <= believed + 0.5  # strong clustering can only help
